// Package bench regenerates every table and figure in the paper's
// evaluation: Figure 1 (Example 1 across the four systems), Figure 2
// (update pushdown), Figure 3 (matrix-chain I/O costs), plus the model-
// validation experiment E6 that cross-checks the analytic formulas
// against measured kernel I/O. See DESIGN.md's per-experiment index.
package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"riot/internal/algebra"
	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/catalog"
	"riot/internal/costmodel"
	"riot/internal/disk"
	"riot/internal/engine"
	"riot/internal/exec"
	"riot/internal/linalg"
	"riot/internal/opt"
	"riot/internal/plan"
	"riot/internal/riotdb"
	"riot/internal/rlang"
)

// example1Script is the paper's Example 1, in riotscript.
const example1Script = `
xs <- 3; ys <- 4
xe <- 100; ye <- 200
d <- sqrt((x-xs)^2+(y-ys)^2) + sqrt((x-xe)^2+(y-ye)^2)
s <- sample(length(x), 100)
z <- d[s]
print(z)
`

// Figure1Row is one (engine, n) measurement.
type Figure1Row struct {
	Engine  string
	N       int64
	IOMB    float64
	Seconds float64
	WallNS  int64 // real wall-clock of the measured script run
}

// Figure1 runs Example 1 on every engine for each vector size, with the
// paper's memory recipe: memory holds the runtime plus two vectors of
// 2^22 elements (scaled down by the same ratio when maxN is smaller).
// It returns one row per (engine, n).
func Figure1(sizes []int64, blockElems int, w io.Writer) ([]Figure1Row, error) {
	var rows []Figure1Row
	maxN := sizes[len(sizes)-1]
	memElems := 2 * (maxN / 2) // two vectors of the middle size
	if len(sizes) >= 2 {
		memElems = 2 * sizes[len(sizes)-2]
	}
	runtimePages := 24
	tm := engine.DefaultTimeModel
	for _, n := range sizes {
		engines := []engine.Engine{
			engine.NewPlainR(blockElems, int(memElems/int64(blockElems))+runtimePages, runtimePages, tm),
			engine.NewRIOTDB(riotdb.Strawman, blockElems, memElems, tm),
			engine.NewRIOTDB(riotdb.MatNamed, blockElems, memElems, tm),
			engine.NewRIOTDB(riotdb.Full, blockElems, memElems, tm),
			engine.NewRIOT(blockElems, memElems, tm),
		}
		for _, e := range engines {
			rep, wall, err := runExample1(e, n)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", e.Name(), n, err)
			}
			rows = append(rows, Figure1Row{Engine: e.Name(), N: n, IOMB: rep.IOMB(), Seconds: rep.SimSeconds, WallNS: wall})
			if err := e.Close(); err != nil {
				return nil, fmt.Errorf("%s n=%d: close: %w", e.Name(), n, err)
			}
		}
	}
	if w != nil {
		fmt.Fprintln(w, "Figure 1(a): Disk I/O (MB) — Example 1")
		printFig1(w, rows, func(r Figure1Row) float64 { return r.IOMB })
		fmt.Fprintln(w, "\nFigure 1(b): Computation time (simulated sec) — Example 1")
		printFig1(w, rows, func(r Figure1Row) float64 { return r.Seconds })
	}
	return rows, nil
}

func printFig1(w io.Writer, rows []Figure1Row, metric func(Figure1Row) float64) {
	var sizes []int64
	seen := map[int64]bool{}
	for _, r := range rows {
		if !seen[r.N] {
			seen[r.N] = true
			sizes = append(sizes, r.N)
		}
	}
	fmt.Fprintf(w, "%-18s", "engine \\ n")
	for _, n := range sizes {
		fmt.Fprintf(w, "%14d", n)
	}
	fmt.Fprintln(w)
	var names []string
	seenE := map[string]bool{}
	for _, r := range rows {
		if !seenE[r.Engine] {
			seenE[r.Engine] = true
			names = append(names, r.Engine)
		}
	}
	for _, name := range names {
		fmt.Fprintf(w, "%-18s", name)
		for _, n := range sizes {
			for _, r := range rows {
				if r.Engine == name && r.N == n {
					fmt.Fprintf(w, "%14.1f", metric(r))
				}
			}
		}
		fmt.Fprintln(w)
	}
}

// runExample1 executes the script on e with fresh inputs of size n,
// measuring only the computation (inputs pre-loaded, as in the paper).
// It returns the engine's report plus the real wall-clock nanoseconds of
// the script run.
func runExample1(e engine.Engine, n int64) (engine.Report, int64, error) {
	in := rlang.New(e)
	x, err := e.NewVector(n, func(i int64) float64 { return float64(i % 9973) })
	if err != nil {
		return engine.Report{}, 0, err
	}
	y, err := e.NewVector(n, func(i int64) float64 { return float64(i % 9967) })
	if err != nil {
		return engine.Report{}, 0, err
	}
	in.SetVector("x", x)
	in.SetVector("y", y)
	e.ResetStats()
	start := time.Now()
	if err := in.Run(example1Script); err != nil {
		return engine.Report{}, 0, err
	}
	return e.Report(), time.Since(start).Nanoseconds(), nil
}

// Figure2Row is one configuration of the update-pushdown experiment.
type Figure2Row struct {
	Config   string
	Elements int64 // elements computed to produce b[1:10]
	IOBlocks int64
	WallNS   int64 // real wall-clock of the measured fetch
}

// Figure2 compares deferred functional updates plus subscript pushdown
// (RIOT) against eager update semantics (R / RIOT-DB) on the §5 example
// b <- a^2; b[b>100] <- 100; print(b[1:10]).
func Figure2(n int64, blockElems int, w io.Writer) ([]Figure2Row, error) {
	run := func(deferred bool) (Figure2Row, error) {
		dev := disk.NewDevice(blockElems)
		pool := buffer.New(dev, 64)
		ex := exec.New(pool)
		ex.EagerUpdates = !deferred
		g := algebra.NewGraph()
		a, err := array.NewVector(pool, "a", n)
		if err != nil {
			return Figure2Row{}, err
		}
		if err := a.Fill(func(i int64) float64 { return float64(i) }); err != nil {
			return Figure2Row{}, err
		}
		an := g.SourceVec(a)
		b, err := g.ScalarOp("^", an, 2, false)
		if err != nil {
			return Figure2Row{}, err
		}
		b2, err := g.UpdateMask(b, ">", 100, 100)
		if err != nil {
			return Figure2Row{}, err
		}
		head, err := g.Range(b2, 0, 10)
		if err != nil {
			return Figure2Row{}, err
		}
		cfg := opt.DefaultConfig()
		cfg.PushdownRange = deferred
		cfg.PushdownGather = deferred
		root, err := opt.New(g, cfg).Optimize(head)
		if err != nil {
			return Figure2Row{}, err
		}
		if err := pool.DropAll(); err != nil {
			return Figure2Row{}, err
		}
		dev.ResetStats()
		start := time.Now()
		if _, err := ex.Fetch(root, -1); err != nil {
			return Figure2Row{}, err
		}
		wall := time.Since(start).Nanoseconds()
		name := "eager update (R / RIOT-DB)"
		if deferred {
			name = "deferred update + pushdown (RIOT)"
		}
		return Figure2Row{Config: name, Elements: ex.Stats().ElementsComputed, IOBlocks: dev.Stats().TotalBlocks(), WallNS: wall}, nil
	}
	eager, err := run(false)
	if err != nil {
		return nil, err
	}
	deferred, err := run(true)
	if err != nil {
		return nil, err
	}
	rows := []Figure2Row{eager, deferred}
	if w != nil {
		fmt.Fprintf(w, "Figure 2: b <- a^2; b[b>100] <- 100; print(b[1:10])   (n = %d)\n", n)
		fmt.Fprintf(w, "%-36s %16s %12s\n", "configuration", "elements computed", "I/O blocks")
		for _, r := range rows {
			fmt.Fprintf(w, "%-36s %16d %12d\n", r.Config, r.Elements, r.IOBlocks)
		}
	}
	return rows, nil
}

// Fig3BlockElems is the block size (in float64 elements) the Figure 3
// cost calculations assume; exported so result converters agree with it.
const Fig3BlockElems = 1024

// Figure3Row is one (strategy, configuration) calculated cost.
type Figure3Row struct {
	Strategy string
	N        float64
	MemGB    float64
	Skew     float64
	IOBlocks float64
}

// Figure3a computes the calculated I/O costs of the three-matrix chain
// for n ∈ sizes and memories mems (GB), at skew s=2, exactly as the
// paper's Figure 3(a).
func Figure3a(sizes []float64, memsGB []float64, w io.Writer) []Figure3Row {
	var rows []Figure3Row
	for _, n := range sizes {
		for _, gb := range memsGB {
			p := costmodel.Params{MemElems: costmodel.GB(gb), BlockElems: Fig3BlockElems}
			dims := costmodel.SkewedChainDims(n, 2)
			rows = append(rows,
				Figure3Row{"RIOT-DB", n, gb, 2, costmodel.InOrder(dims).IO(costmodel.StrategyRIOTDB, p)},
				Figure3Row{"BNLJ-Inspired", n, gb, 2, costmodel.InOrder(dims).IO(costmodel.StrategyBNLJ, p)},
				Figure3Row{"Square/In-Order", n, gb, 2, costmodel.InOrder(dims).IO(costmodel.StrategySquare, p)},
				Figure3Row{"Square/Opt-Order", n, gb, 2, costmodel.OptOrder(dims).IO(costmodel.StrategySquare, p)},
			)
		}
	}
	if w != nil {
		fmt.Fprintln(w, "Figure 3(a): chain A(n x n/2) B(n/2 x n) C(n x n), I/O in blocks (B=1024)")
		fmt.Fprintf(w, "%-18s", "strategy")
		for _, n := range sizes {
			for _, gb := range memsGB {
				fmt.Fprintf(w, "  n=%g/%gGB", n, gb)
			}
		}
		fmt.Fprintln(w)
		for _, s := range []string{"RIOT-DB", "BNLJ-Inspired", "Square/In-Order", "Square/Opt-Order"} {
			fmt.Fprintf(w, "%-18s", s)
			for _, n := range sizes {
				for _, gb := range memsGB {
					for _, r := range rows {
						if r.Strategy == s && r.N == n && r.MemGB == gb {
							fmt.Fprintf(w, "  %12.3e", r.IOBlocks)
						}
					}
				}
			}
			fmt.Fprintln(w)
		}
	}
	return rows
}

// Figure3b varies the skewness factor at n=100000 and 2 GB memory,
// dropping RIOT-DB as the paper does ("it performs far worse").
func Figure3b(skews []float64, w io.Writer) []Figure3Row {
	p := costmodel.Params{MemElems: costmodel.GB(2), BlockElems: Fig3BlockElems}
	var rows []Figure3Row
	for _, s := range skews {
		dims := costmodel.SkewedChainDims(100000, s)
		rows = append(rows,
			Figure3Row{"BNLJ-Inspired", 100000, 2, s, costmodel.InOrder(dims).IO(costmodel.StrategyBNLJ, p)},
			Figure3Row{"Square/In-Order", 100000, 2, s, costmodel.InOrder(dims).IO(costmodel.StrategySquare, p)},
			Figure3Row{"Square/Opt-Order", 100000, 2, s, costmodel.OptOrder(dims).IO(costmodel.StrategySquare, p)},
		)
	}
	if w != nil {
		fmt.Fprintln(w, "Figure 3(b): skewness sweep, n=100000, M=2GB, I/O in blocks")
		fmt.Fprintf(w, "%-18s", "strategy")
		for _, s := range skews {
			fmt.Fprintf(w, "       s=%g", s)
		}
		fmt.Fprintln(w)
		for _, name := range []string{"BNLJ-Inspired", "Square/In-Order", "Square/Opt-Order"} {
			fmt.Fprintf(w, "%-18s", name)
			for _, s := range skews {
				for _, r := range rows {
					if r.Strategy == name && r.Skew == s {
						fmt.Fprintf(w, " %9.3e", r.IOBlocks)
					}
				}
			}
			fmt.Fprintln(w)
		}
	}
	return rows
}

// ValidateRow compares measured kernel I/O against the analytic model.
type ValidateRow struct {
	N         int64
	Kernel    string
	Measured  float64
	Predicted float64
	WallNS    int64 // real wall-clock of the measured multiply
}

// ValidateBlockElems is the device block size ValidateModel uses;
// exported so result converters agree with it.
const ValidateBlockElems = 64

// ValidateModel executes the square-tiled and BNLJ kernels on real tiled
// matrices at laptop scale and reports measured vs predicted blocks
// (experiment E6).
func ValidateModel(sizes []int64, w io.Writer) ([]ValidateRow, error) {
	const blockElems = ValidateBlockElems
	const frames = 48
	var rows []ValidateRow
	for _, n := range sizes {
		for _, kernel := range []string{"square-tiled", "bnlj"} {
			dev := disk.NewDevice(blockElems)
			pool := buffer.New(dev, frames)
			var a, b *array.Matrix
			var err error
			if kernel == "square-tiled" {
				a, err = array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.SquareTiles})
			} else {
				a, err = array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.RowTiles})
			}
			if err != nil {
				return nil, err
			}
			if kernel == "square-tiled" {
				b, err = array.NewMatrix(pool, "b", n, n, array.Options{Shape: array.SquareTiles})
			} else {
				b, err = array.NewMatrix(pool, "b", n, n, array.Options{Shape: array.ColTiles})
			}
			if err != nil {
				return nil, err
			}
			if err := a.Fill(func(i, j int64) float64 { return float64((i + j) % 7) }); err != nil {
				return nil, err
			}
			if err := b.Fill(func(i, j int64) float64 { return float64((i * j) % 5) }); err != nil {
				return nil, err
			}
			if err := pool.DropAll(); err != nil {
				return nil, err
			}
			dev.ResetStats()
			start := time.Now()
			if kernel == "square-tiled" {
				_, err = linalg.MatMulTiled(pool, "c", a, b)
			} else {
				_, err = linalg.MatMulBNLJ(pool, "c", a, b, array.Options{Shape: array.RowTiles})
			}
			if err != nil {
				return nil, err
			}
			wall := time.Since(start).Nanoseconds()
			p := costmodel.Params{MemElems: float64(pool.MemoryElems()), BlockElems: blockElems}
			var predicted float64
			if kernel == "square-tiled" {
				predicted = costmodel.SquareTiled(float64(n), float64(n), float64(n), p)
			} else {
				predicted = costmodel.BNLJ(float64(n), float64(n), float64(n), p)
			}
			rows = append(rows, ValidateRow{
				N: n, Kernel: kernel,
				Measured:  float64(dev.Stats().TotalBlocks()),
				Predicted: predicted,
				WallNS:    wall,
			})
		}
	}
	if w != nil {
		fmt.Fprintln(w, "E6: measured kernel I/O vs analytic model (blocks; B=64, M=3072)")
		fmt.Fprintf(w, "%8s %-14s %10s %10s %7s\n", "n", "kernel", "measured", "model", "ratio")
		for _, r := range rows {
			fmt.Fprintf(w, "%8d %-14s %10.0f %10.0f %7.2f\n", r.N, r.Kernel, r.Measured, r.Predicted, r.Measured/r.Predicted)
		}
	}
	return rows, nil
}

// ReadaheadRow is one configuration of the I/O-scheduler ablation.
type ReadaheadRow struct {
	Workload  string // "scan" or "matmul"
	Readahead bool
	Workers   int
	SeqReads  int64
	RandReads int64
	IOMB      float64
	SimSec    float64 // disk.DefaultCostModel over the measured stats
	WallNS    int64   // real wall-clock of the measured operation
	// Prefetch effectiveness (zero with readahead off).
	Prefetched   int64
	PrefetchHits int64
	Wasted       int64
}

// ReadaheadAblation measures the I/O scheduler on the two workloads the
// paper's I/O argument is about: Example 1's fused streaming pipeline
// over two stored vectors, and the square-tiled out-of-core multiply.
// Both run with the scheduler off (the seed's exact I/O) and on, at one
// worker (the deterministic paper configuration) and at maxWorkers.
//
// Both workloads issue structurally random I/O even single-threaded —
// the fused pipeline alternates between x's and y's block runs every
// chunk, and the multiply interleaves tile reads with write-backs of
// evicted result tiles — which is exactly what the scheduler repairs:
// readahead turns each stream into bulky vectored reads, and elevator
// write-back groups the flushes. RandReads and the cost-model seconds
// must drop with the scheduler on.
func ReadaheadAblation(maxWorkers int, w io.Writer) ([]ReadaheadRow, error) {
	var rows []ReadaheadRow

	// Workload 1: Example 1's pattern, (x-3)² + (y-4)² summed, vectors
	// 8× the pool.
	scan := func(workers int, readahead bool) (ReadaheadRow, error) {
		const blockElems = 1024
		const frames = 64
		const n = int64(frames*4) * blockElems
		dev := disk.NewDevice(blockElems)
		pool := buffer.NewSharded(dev, frames, workers)
		if readahead {
			pool.SetReadahead(buffer.ReadaheadConfig{Enabled: true})
		}
		ex := exec.New(pool)
		ex.Workers = workers
		g := algebra.NewGraph()
		x, err := array.NewVector(pool, "x", n)
		if err != nil {
			return ReadaheadRow{}, err
		}
		y, err := array.NewVector(pool, "y", n)
		if err != nil {
			return ReadaheadRow{}, err
		}
		if err := x.Fill(func(i int64) float64 { return float64(i % 97) }); err != nil {
			return ReadaheadRow{}, err
		}
		if err := y.Fill(func(i int64) float64 { return float64(i % 89) }); err != nil {
			return ReadaheadRow{}, err
		}
		if err := pool.DropAll(); err != nil {
			return ReadaheadRow{}, err
		}
		dev.ResetStats()
		pool.ResetStats()
		xn, yn := g.SourceVec(x), g.SourceVec(y)
		xs, err := g.ScalarOp("-", xn, 3, false)
		if err != nil {
			return ReadaheadRow{}, err
		}
		ys, err := g.ScalarOp("-", yn, 4, false)
		if err != nil {
			return ReadaheadRow{}, err
		}
		xq, err := g.ElemBinary("*", xs, xs)
		if err != nil {
			return ReadaheadRow{}, err
		}
		yq, err := g.ElemBinary("*", ys, ys)
		if err != nil {
			return ReadaheadRow{}, err
		}
		d, err := g.ElemBinary("+", xq, yq)
		if err != nil {
			return ReadaheadRow{}, err
		}
		start := time.Now()
		if _, err := ex.Reduce("sum", d); err != nil {
			return ReadaheadRow{}, err
		}
		pool.DrainPrefetch()
		wall := time.Since(start).Nanoseconds()
		st := dev.Stats()
		ps := pool.Stats()
		return ReadaheadRow{
			Workload: "scan", Readahead: readahead, Workers: workers,
			SeqReads: st.SeqReads, RandReads: st.RandReads,
			IOMB:       st.TotalMB(),
			SimSec:     disk.DefaultCostModel.Seconds(st),
			WallNS:     wall,
			Prefetched: ps.Prefetched, PrefetchHits: ps.PrefetchHits, Wasted: ps.WastedPrefetch,
		}, nil
	}

	// Workload 2: square-tiled multiply over matrices that exceed the
	// pool budget (the WorkersAblation configuration).
	matmul := func(workers int, readahead bool) (ReadaheadRow, error) {
		const blockElems = 4096
		const frames = 48
		const n = int64(512)
		dev := disk.NewDevice(blockElems)
		pool := buffer.NewSharded(dev, frames, workers)
		if readahead {
			pool.SetReadahead(buffer.ReadaheadConfig{Enabled: true})
		}
		a, err := array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.SquareTiles})
		if err != nil {
			return ReadaheadRow{}, err
		}
		b, err := array.NewMatrix(pool, "b", n, n, array.Options{Shape: array.SquareTiles})
		if err != nil {
			return ReadaheadRow{}, err
		}
		if err := a.Fill(func(i, j int64) float64 { return float64((i + j) % 13) }); err != nil {
			return ReadaheadRow{}, err
		}
		if err := b.Fill(func(i, j int64) float64 { return float64((i * j) % 11) }); err != nil {
			return ReadaheadRow{}, err
		}
		if err := pool.DropAll(); err != nil {
			return ReadaheadRow{}, err
		}
		dev.ResetStats()
		pool.ResetStats()
		start := time.Now()
		c, err := linalg.MatMulTiledWorkers(pool, "c", a, b, workers)
		if err != nil {
			return ReadaheadRow{}, err
		}
		pool.DrainPrefetch()
		wall := time.Since(start).Nanoseconds()
		st := dev.Stats()
		ps := pool.Stats()
		row := ReadaheadRow{
			Workload: "matmul", Readahead: readahead, Workers: workers,
			SeqReads: st.SeqReads, RandReads: st.RandReads,
			IOMB:       st.TotalMB(),
			SimSec:     disk.DefaultCostModel.Seconds(st),
			WallNS:     wall,
			Prefetched: ps.Prefetched, PrefetchHits: ps.PrefetchHits, Wasted: ps.WastedPrefetch,
		}
		// Spot-check the product so the ablation cannot silently trade
		// correctness for I/O.
		v, err := c.At(n/2, n/3)
		if err != nil {
			return ReadaheadRow{}, err
		}
		var want float64
		for k := int64(0); k < n; k++ {
			want += float64(((n/2)+k)%13) * float64((k*(n/3))%11)
		}
		if v != want {
			return ReadaheadRow{}, fmt.Errorf("bench: readahead matmul diverged: %v != %v", v, want)
		}
		return row, nil
	}

	workerList := []int{1}
	if maxWorkers > 1 {
		workerList = append(workerList, maxWorkers)
	}
	for _, f := range []func(int, bool) (ReadaheadRow, error){scan, matmul} {
		for _, workers := range workerList {
			for _, ra := range []bool{false, true} {
				row, err := f(workers, ra)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	if w != nil {
		fmt.Fprintf(w, "Readahead ablation: I/O scheduler off vs on\n")
		fmt.Fprintf(w, "%-8s %7s %-10s %10s %10s %8s %8s %11s %7s %7s\n",
			"workload", "workers", "readahead", "seq-reads", "rand-reads", "IO-MB", "sim-sec", "prefetched", "hits", "wasted")
		for _, r := range rows {
			on := "off"
			if r.Readahead {
				on = "on"
			}
			fmt.Fprintf(w, "%-8s %7d %-10s %10d %10d %8.1f %8.2f %11d %7d %7d\n",
				r.Workload, r.Workers, on, r.SeqReads, r.RandReads, r.IOMB, r.SimSec,
				r.Prefetched, r.PrefetchHits, r.Wasted)
		}
	}
	return rows, nil
}

// PlannerRow is one configuration of the physical-planner ablation.
type PlannerRow struct {
	Workload     string // "scan", "gather", or "chain"
	Strategy     string // plan.Strategy name
	EstBlocks    float64
	ActualBlocks int64
	IOMB         float64
	SimSec       float64
	WallNS       int64 // real wall-clock of the forced plan
}

// PlannerAblation compares the heuristic and cost-based planner
// strategies on the three workload shapes the planner's decisions
// matter for: Example 1's fused scan-and-reduce over two out-of-core
// vectors, a shared-gather pipeline whose data vector fits in memory
// (where the cost-based planner skips a useless materialization), and
// a reordered matrix chain (algorithm selection per multiply). Each row
// records the plan's estimated device blocks next to the measured
// count, so the estimate-vs-actual trajectory is tracked in
// BENCH_results.json.
func PlannerAblation(w io.Writer) ([]PlannerRow, error) {
	var rows []PlannerRow

	run := func(workload string, strat plan.Strategy, f func(r *engine.RIOT) (engine.Value, func() error, error), blockElems int, memElems int64) error {
		r := engine.NewRIOTConfigured(blockElems, memElems, engine.DefaultTimeModel,
			engine.RIOTOptions{Workers: 1, Planner: strat})
		defer r.Close()
		v, force, err := f(r)
		if err != nil {
			return err
		}
		pl, err := r.Plan(v)
		if err != nil {
			return err
		}
		if err := r.Executor().Pool().DropAll(); err != nil {
			return err
		}
		dev := r.Executor().Pool().Device()
		dev.ResetStats()
		start := time.Now()
		if err := force(); err != nil {
			return err
		}
		wall := time.Since(start).Nanoseconds()
		st := dev.Stats()
		rows = append(rows, PlannerRow{
			Workload: workload, Strategy: strat.String(),
			EstBlocks:    pl.EstBlocks,
			ActualBlocks: st.TotalBlocks(),
			IOMB:         st.TotalMB(),
			SimSec:       disk.DefaultCostModel.Seconds(st),
			WallNS:       wall,
		})
		return nil
	}

	// Workload 1: Example 1's shape — sum((x-3)²+(y-4)²) with both
	// vectors 4× the pool. No shared subtree is worth storing; both
	// strategies must pipeline everything.
	scan := func(r *engine.RIOT) (engine.Value, func() error, error) {
		const n = int64(64*4) * 1024
		x, err := r.NewVector(n, func(i int64) float64 { return float64(i % 97) })
		if err != nil {
			return nil, nil, err
		}
		y, err := r.NewVector(n, func(i int64) float64 { return float64(i % 89) })
		if err != nil {
			return nil, nil, err
		}
		xs, err := r.ArithScalar("-", x, 3, false)
		if err != nil {
			return nil, nil, err
		}
		ys, err := r.ArithScalar("-", y, 4, false)
		if err != nil {
			return nil, nil, err
		}
		xq, err := r.Arith("*", xs, xs)
		if err != nil {
			return nil, nil, err
		}
		yq, err := r.Arith("*", ys, ys)
		if err != nil {
			return nil, nil, err
		}
		d, err := r.Arith("+", xq, yq)
		if err != nil {
			return nil, nil, err
		}
		return d, func() error { _, err := r.Sum(d); return err }, nil
	}

	// Workload 2: a shared gather over a memory-resident data vector —
	// (x[s]-3)² + (x[s]-100)². The heuristic always materializes the
	// shared gather; the cost-based planner recomputes it from the
	// buffer pool and saves the temporary's write-back.
	gather := func(r *engine.RIOT) (engine.Value, func() error, error) {
		const n = int64(16384)
		const k = int64(2048)
		x, err := r.NewVector(n, func(i int64) float64 { return float64(i % 211) })
		if err != nil {
			return nil, nil, err
		}
		s, err := r.Sample(n, k, 7)
		if err != nil {
			return nil, nil, err
		}
		g, err := r.IndexBy(x, s)
		if err != nil {
			return nil, nil, err
		}
		a, err := r.ArithScalar("-", g, 3, false)
		if err != nil {
			return nil, nil, err
		}
		aq, err := r.Arith("*", a, a)
		if err != nil {
			return nil, nil, err
		}
		b, err := r.ArithScalar("-", g, 100, false)
		if err != nil {
			return nil, nil, err
		}
		bq, err := r.Arith("*", b, b)
		if err != nil {
			return nil, nil, err
		}
		z, err := r.Arith("+", aq, bq)
		if err != nil {
			return nil, nil, err
		}
		return z, func() error { _, err := r.Fetch(z, -1); return err }, nil
	}

	// Workload 3: the Figure 3 skewed chain A(n×n/2) B(n/2×n) C(n×n) at
	// validation scale; the planner picks the order (via opt's DP) and
	// the kernel per multiply, and its per-step formula estimates are
	// compared against the measured tile traffic.
	chain := func(r *engine.RIOT) (engine.Value, func() error, error) {
		const n = int64(160)
		a, err := r.NewMatrix(n, n/2, func(i, j int64) float64 { return float64((i + j) % 7) })
		if err != nil {
			return nil, nil, err
		}
		b, err := r.NewMatrix(n/2, n, func(i, j int64) float64 { return float64((i * j) % 5) })
		if err != nil {
			return nil, nil, err
		}
		c, err := r.NewMatrix(n, n, func(i, j int64) float64 { return float64((i - j) % 3) })
		if err != nil {
			return nil, nil, err
		}
		ab, err := r.MatMul(a, b)
		if err != nil {
			return nil, nil, err
		}
		abc, err := r.MatMul(ab, c)
		if err != nil {
			return nil, nil, err
		}
		return abc, func() error { _, err := r.ForceMatrix(abc); return err }, nil
	}

	type workload struct {
		name       string
		f          func(r *engine.RIOT) (engine.Value, func() error, error)
		blockElems int
		memElems   int64
	}
	for _, wl := range []workload{
		{"scan", scan, 1024, 64 * 1024},
		{"gather", gather, 1024, 64 * 1024},
		{"chain", chain, 64, 48 * 64},
	} {
		for _, strat := range []plan.Strategy{plan.Heuristic, plan.CostBased} {
			if err := run(wl.name, strat, wl.f, wl.blockElems, wl.memElems); err != nil {
				return nil, fmt.Errorf("bench: planner %s/%s: %w", wl.name, strat, err)
			}
		}
	}
	if w != nil {
		fmt.Fprintln(w, "Planner ablation: heuristic vs cost-based physical plans")
		fmt.Fprintf(w, "%-8s %-11s %12s %12s %8s %8s\n",
			"workload", "strategy", "est-blocks", "actual-blks", "IO-MB", "sim-sec")
		for _, r := range rows {
			fmt.Fprintf(w, "%-8s %-11s %12.0f %12d %8.2f %8.3f\n",
				r.Workload, r.Strategy, r.EstBlocks, r.ActualBlocks, r.IOMB, r.SimSec)
		}
	}
	return rows, nil
}

// WorkersRow is one configuration of the parallel-execution ablation.
type WorkersRow struct {
	Workers int     // worker goroutines (and pool shards)
	WallNS  int64   // measured wall-clock for the multiply
	IOMB    float64 // device traffic
	Speedup float64 // wall-clock of Workers=1 over this row
}

// WorkersAblation multiplies two n×n square-tiled matrices that exceed
// the pool budget with each worker count, measuring real wall-clock
// time. It is the experiment behind riot.Config.Workers: Workers=1 is
// the paper's deterministic sequential schedule, larger counts shrink
// the per-worker super-block (q = √(M/3W)) and run them concurrently.
// Wall-clock speedup requires real cores; the I/O column shows the
// schedule staying within the same budget either way.
func WorkersAblation(n int64, workersList []int, w io.Writer) ([]WorkersRow, error) {
	const blockElems = 4096 // 64x64 tiles
	const frames = 48       // well below the tile count of one matrix
	var rows []WorkersRow
	var check float64
	for _, workers := range workersList {
		dev := disk.NewDevice(blockElems)
		pool := buffer.NewSharded(dev, frames, workers)
		a, err := array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.SquareTiles})
		if err != nil {
			return nil, err
		}
		b, err := array.NewMatrix(pool, "b", n, n, array.Options{Shape: array.SquareTiles})
		if err != nil {
			return nil, err
		}
		if err := a.Fill(func(i, j int64) float64 { return float64((i + j) % 13) }); err != nil {
			return nil, err
		}
		if err := b.Fill(func(i, j int64) float64 { return float64((i * j) % 11) }); err != nil {
			return nil, err
		}
		if err := pool.DropAll(); err != nil {
			return nil, err
		}
		dev.ResetStats()
		start := time.Now()
		c, err := linalg.MatMulTiledWorkers(pool, "c", a, b, workers)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		ioBytes := dev.Stats().TotalBytes() // snapshot before the spot-check's read
		// Cross-check every configuration against the first one through a
		// spot value (the full comparison lives in the linalg tests).
		v, err := c.At(n/2, n/3)
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			check = v
		} else if v != check {
			return nil, fmt.Errorf("bench: workers=%d result diverged: %v != %v", workers, v, check)
		}
		rows = append(rows, WorkersRow{
			Workers: workers,
			WallNS:  wall.Nanoseconds(),
			IOMB:    float64(ioBytes) / (1 << 20),
		})
	}
	for i := range rows {
		rows[i].Speedup = float64(rows[0].WallNS) / float64(rows[i].WallNS)
	}
	if w != nil {
		fmt.Fprintf(w, "Workers ablation: %dx%d square-tiled multiply, budget %d frames of %d elems\n", n, n, frames, blockElems)
		fmt.Fprintf(w, "%8s %14s %10s %9s\n", "workers", "wall", "IO-MB", "speedup")
		for _, r := range rows {
			fmt.Fprintf(w, "%8d %14s %10.1f %8.2fx\n", r.Workers, time.Duration(r.WallNS), r.IOMB, r.Speedup)
		}
	}
	return rows, nil
}

// SparseRow is one sparse-ablation measurement: an n×n adjacency matmul
// at a given density, dense tiles vs the tile-compressed sparse kind.
type SparseRow struct {
	Density    float64 // stored nnz / n² of the adjacency matrix
	Mode       string  // "dense" or "sparse"
	NNZ        int64   // adjacency nonzeros
	BlockReads int64
	IOMB       float64
	SimSec     float64 // disk.DefaultCostModel over the measured stats
	EstBlocks  float64 // the planner's estimate for the multiply step
	WallNS     int64   // real wall-clock of the forced multiply
}

// SparseAblation is the headline sparse benchmark: two-hop path counts
// (A %*% A) over a pathlengths-style banded adjacency matrix at three
// densities. Block reads on the sparse path scale with the number of
// non-empty tiles, so they drop roughly in proportion to density, while
// the dense kernel pays the full Θ(n³/(B√M)) schedule regardless of the
// zeros it multiplies. At full density the sparse kind's compressed
// payloads buy nothing and its tile-at-a-time schedule re-reads more —
// the crossover the planner's density estimates exist to see.
func SparseAblation(w io.Writer) ([]SparseRow, error) {
	const n = 512
	const blockElems = 1024
	const memElems = 1 << 16
	fmt.Fprintf(w, "sparse ablation: %d×%d adjacency two-hop matmul (B=%d, M=%d)\n", n, n, blockElems, memElems)
	fmt.Fprintf(w, "%-10s %-8s %12s %12s %10s %10s\n", "density", "mode", "nnz", "blk reads", "io MB", "sim s")

	// Bands chosen so stored densities land near 1%, 10%, and 100%.
	bands := []int64{2, 26, n}
	var rows []SparseRow
	for _, band := range bands {
		gen := func(i, j int64) float64 {
			d := i - j
			if d < 0 {
				d = -d
			}
			if band >= n || (d != 0 && d <= band) {
				return 1
			}
			return 0
		}
		for _, mode := range []string{"dense", "sparse"} {
			r := engine.NewRIOT(blockElems, memElems, engine.DefaultTimeModel)
			a, err := r.NewMatrix(n, n, gen)
			if err != nil {
				return nil, err
			}
			nnz, err := r.NNZ(a)
			if err != nil {
				return nil, err
			}
			if mode == "sparse" {
				if a, err = r.ToSparse(a); err != nil {
					return nil, err
				}
			}
			p, err := r.MatMul(a, a)
			if err != nil {
				return nil, err
			}
			pl, err := r.Plan(p)
			if err != nil {
				return nil, err
			}
			var est float64
			for _, s := range pl.Steps {
				if s.Kind == plan.StepMatMul {
					est = s.EstReadBlocks + s.EstWriteBlocks
				}
			}
			r.ResetStats()
			// Force the multiply in its natural kind; no result scan, so
			// the measured I/O is the kernel's alone.
			start := time.Now()
			if _, _, err := r.ForceAnyMatrix(p); err != nil {
				return nil, err
			}
			wall := time.Since(start).Nanoseconds()
			st := r.Pool().Device().Stats()
			row := SparseRow{
				Density:    float64(nnz) / float64(n*n),
				Mode:       mode,
				NNZ:        nnz,
				BlockReads: st.BlocksRead,
				IOMB:       st.TotalMB(),
				SimSec:     disk.DefaultCostModel.Seconds(st),
				EstBlocks:  est,
				WallNS:     wall,
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-10.4f %-8s %12d %12d %10.1f %10.2f\n",
				row.Density, row.Mode, row.NNZ, row.BlockReads, row.IOMB, row.SimSec)
			if err := r.Close(); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// WALRow is one write-ahead-log ablation measurement: concurrent
// sessions publishing named vectors under one durability mode.
type WALRow struct {
	Mode        string // "off", "interval", "always"
	Sessions    int
	Publishes   int
	WallNS      int64
	PubPerSec   float64
	Fsyncs      int64 // log fsyncs over the whole run (0 when off)
	GroupedAcks int64 // acks satisfied by a shared flush (0 when off)
}

// WALAblation measures what durability costs: N concurrent publishers
// against one catalog with the WAL off (checkpoint-only, the seed
// behavior), on a flush interval, and on fsync-per-commit. The always
// row is the honest price of crash safety; when the host filesystem's
// fsync is slower than a publish (any real disk), its fsync count drops
// below its publish count — the group commit batching concurrent
// sessions' appends into shared flushes. Host-filesystem wall-clock,
// not simulated time: the WAL writes real files, and the simulated
// device counters are identical in every mode by design.
func WALAblation(w io.Writer) ([]WALRow, error) {
	const blockElems = 256
	const frames = 512
	const vecLen = 2048 // 8 blocks of payload per publish
	const sessions = 4
	const perSession = 40
	fmt.Fprintf(w, "wal ablation: %d sessions × %d publishes of %d-element vectors\n",
		sessions, perSession, vecLen)
	fmt.Fprintf(w, "%-10s %12s %12s %12s %14s\n", "mode", "publishes", "pub/s", "fsyncs", "grouped acks")

	modes := []struct {
		name string
		mode catalog.WALMode
	}{
		{"off", catalog.WALOff},
		{"interval", catalog.WALInterval},
		{"always", catalog.WALAlways},
	}
	var rows []WALRow
	for _, m := range modes {
		dir, err := os.MkdirTemp("", "riot-walbench-*")
		if err != nil {
			return nil, err
		}
		row, err := walAblationRun(dir, m.name, m.mode, blockElems, frames, vecLen, sessions, perSession)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "%-10s %12d %12.0f %12d %14d\n",
			row.Mode, row.Publishes, row.PubPerSec, row.Fsyncs, row.GroupedAcks)
		rows = append(rows, row)
	}
	return rows, nil
}

// walAblationRun times one durability mode end to end.
func walAblationRun(dir, name string, mode catalog.WALMode, blockElems, frames int, vecLen int64, sessions, perSession int) (WALRow, error) {
	pool := buffer.NewSharded(disk.NewDevice(blockElems), frames, sessions)
	cat, err := catalog.OpenWith(dir, pool, catalog.Options{WAL: mode})
	if err != nil {
		return WALRow{}, err
	}
	// One source vector per session, built before the clock starts: the
	// measured loop is publishing, not filling.
	srcs := make([]*array.Vector, sessions)
	for s := range srcs {
		v, err := array.NewVector(pool, fmt.Sprintf("src%d", s), vecLen)
		if err != nil {
			return WALRow{}, err
		}
		if err := v.Fill(func(i int64) float64 { return float64(s)*1e6 + float64(i) }); err != nil {
			return WALRow{}, err
		}
		srcs[s] = v
	}
	start := time.Now()
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		go func(s int) {
			for i := 0; i < perSession; i++ {
				if _, err := cat.PutVector(fmt.Sprintf("s%d-x%04d", s, i), srcs[s]); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(s)
	}
	for s := 0; s < sessions; s++ {
		if err := <-errs; err != nil {
			return WALRow{}, err
		}
	}
	wall := time.Since(start).Nanoseconds()
	row := WALRow{
		Mode:      name,
		Sessions:  sessions,
		Publishes: sessions * perSession,
		WallNS:    wall,
		PubPerSec: float64(sessions*perSession) / (float64(wall) / 1e9),
	}
	if st, on := cat.WALStats(); on {
		row.Fsyncs, row.GroupedAcks = st.Fsyncs, st.GroupedAcks
	}
	if err := cat.Close(); err != nil {
		return WALRow{}, err
	}
	return row, nil
}

// GFlopsRow is one arithmetic-throughput measurement of the tiled
// multiply: a compute kernel against a cold or warm buffer pool.
type GFlopsRow struct {
	Kernel string  // "naive" or "micro"
	Pool   string  // "cold" (48 frames) or "warm" (everything resident)
	N      int64
	WallNS int64
	GFlops float64 // 2n³ / wall seconds, in 1e9 flop/s
	IOMB   float64 // device traffic during the multiply (≈0 warm)
}

// GFlopsAblation isolates the CPU side of the square-tiled multiply: the
// same super-block I/O schedule runs with the naive tile-at-a-time
// triple loop and with the packed register-blocked 4×4 microkernel,
// against a pool far smaller than the inputs (cold: compute interleaves
// with real block traffic) and a pool that holds all three matrices
// (warm: pure arithmetic throughput). The warm micro/naive ratio is the
// microkernel's speedup, asserted in CI; the cold rows show how much of
// it survives when the I/O schedule also runs. The warm micro rate
// retunes costmodel.FlopsPerSec, so plan CPU estimates printed after
// this ablation reflect the measured machine rather than the 2009
// default.
func GFlopsAblation(n int64, w io.Writer) ([]GFlopsRow, error) {
	const blockElems = 4096 // 64×64 tiles
	const coldFrames = 48
	flops := 2 * float64(n) * float64(n) * float64(n)

	// The expected spot value at (n/2, n/3), from the fill patterns.
	var want float64
	for k := int64(0); k < n; k++ {
		want += float64(((n/2)+k)%13) * float64((k*(n/3))%11)
	}

	var rows []GFlopsRow
	for _, kern := range []linalg.Kernel{linalg.KernelNaive, linalg.KernelMicro} {
		for _, mode := range []string{"cold", "warm"} {
			dev := disk.NewDevice(blockElems)
			frames := coldFrames
			if mode == "warm" {
				// Room for both inputs, the result, and slack: the fill
				// below leaves a and b fully resident, and c's new tiles
				// never force an eviction.
				grid := (int(n) + 63) / 64
				frames = 4 * grid * grid
			}
			pool := buffer.New(dev, frames)
			a, err := array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.SquareTiles})
			if err != nil {
				return nil, err
			}
			b, err := array.NewMatrix(pool, "b", n, n, array.Options{Shape: array.SquareTiles})
			if err != nil {
				return nil, err
			}
			if err := a.Fill(func(i, j int64) float64 { return float64((i + j) % 13) }); err != nil {
				return nil, err
			}
			if err := b.Fill(func(i, j int64) float64 { return float64((i * j) % 11) }); err != nil {
				return nil, err
			}
			if mode == "cold" {
				if err := pool.DropAll(); err != nil {
					return nil, err
				}
			}
			dev.ResetStats()
			start := time.Now()
			c, err := linalg.MatMulTiledKernel(pool, "c", a, b, 1, kern)
			if err != nil {
				return nil, err
			}
			wall := time.Since(start)
			ioBytes := dev.Stats().TotalBytes()
			v, err := c.At(n/2, n/3)
			if err != nil {
				return nil, err
			}
			if v != want {
				return nil, fmt.Errorf("bench: gflops %s/%s diverged: %v != %v", kern, mode, v, want)
			}
			rows = append(rows, GFlopsRow{
				Kernel: kern.String(),
				Pool:   mode,
				N:      n,
				WallNS: wall.Nanoseconds(),
				GFlops: flops / wall.Seconds() / 1e9,
				IOMB:   float64(ioBytes) / (1 << 20),
			})
		}
	}

	// Calibrate the planner's CPU term from the warm microkernel rate —
	// the configuration Explain's cpu estimates describe (compute not
	// hidden behind I/O, production kernel).
	var calibrated float64
	for _, r := range rows {
		if r.Kernel == "micro" && r.Pool == "warm" {
			calibrated = r.GFlops * 1e9
			costmodel.Calibrate(calibrated)
		}
	}

	if w != nil {
		fmt.Fprintf(w, "GFLOP/s ablation: %dx%d square-tiled multiply (2n³ = %.2e flops), naive vs microkernel\n", n, n, flops)
		fmt.Fprintf(w, "%-8s %-6s %14s %10s %10s\n", "kernel", "pool", "wall", "GFLOP/s", "IO-MB")
		for _, r := range rows {
			fmt.Fprintf(w, "%-8s %-6s %14s %10.2f %10.1f\n",
				r.Kernel, r.Pool, time.Duration(r.WallNS), r.GFlops, r.IOMB)
		}
		if calibrated > 0 {
			fmt.Fprintf(w, "calibrated costmodel.FlopsPerSec = %.3e flop/s (warm microkernel)\n", calibrated)
		}
	}
	return rows, nil
}
