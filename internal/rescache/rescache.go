// Package rescache is the shared, quota-metered result cache: it
// memoizes materialized intermediates across sessions, keyed by the
// canonical DAG hash (hash.go) so two sessions that force the same
// expression over the same published arrays share one stored copy.
//
// Storage lives in the shared device/pool like any catalog temp, but
// under the cache's own owner namespace ("rescache.<seq>") and its own
// buffer.Pool session view, so cached blocks are charged to a dedicated
// cache quota rather than to the session that happened to install them.
// Admission is quota-controlled: an entry that does not fit evicts
// LRU entries with no readers, and is skipped outright if the cache
// cannot make room. Invalidation rides the catalog's LWW version
// counter: when a leaf array is republished or deleted, every entry
// depending on it is dropped (entries still held by a reader are marked
// dead and freed on last release, so eviction never unpins a frame
// another session holds).
package rescache

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"riot/internal/algebra"
	"riot/internal/array"
	"riot/internal/buffer"
)

// Cache is a shared cross-session result cache. All methods are safe
// for concurrent use by any number of sessions.
type Cache struct {
	pool       *buffer.Pool // metered cache view of the shared pool
	blockElems int
	quota      int // stored-block budget (admission + eviction bound)

	mu      sync.Mutex
	entries map[Key]*entry
	byName  map[string]map[Key]*entry // leaf name -> dependent entries
	lru     *list.List                // front = most recently used
	leaves  map[any]LeafID            // backing store -> catalog identity
	used    int                       // stored blocks currently held
	seq     int64
	closed  bool

	hits, misses, installs   atomic.Int64
	evictions, invalidations atomic.Int64
	rejected                 atomic.Int64
}

type entry struct {
	key    Key
	deps   []string
	vec    *array.Vector
	mat    *array.Matrix
	blocks int
	refs   int
	dead   bool // invalidated/evicted while referenced; free on last release
	elem   *list.Element
}

// Handle is a pinned reference to a cache entry. The backing array
// stays valid — immune to eviction and invalidation-frees — until
// Release is called. Holders must treat the array as read-only.
type Handle struct {
	c *Cache
	e *entry
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits          int64 // Acquire found a live entry
	Misses        int64 // Acquire found nothing
	Installs      int64 // entries admitted
	Evictions     int64 // entries dropped to make room
	Invalidations int64 // entries dropped by leaf republication/deletion
	Rejected      int64 // installs refused by admission control
	Entries       int64 // live entries right now
	Bytes         int64 // stored bytes right now
	QuotaBytes    int64 // the stored-byte budget
}

// New creates a cache over the shared pool with a stored-data budget of
// quotaElems float64 elements. The budget is rounded to whole device
// blocks and clamped so at least a few blocks fit; transient pins the
// cache takes while copying entries in are metered against a dedicated
// pool session view of the same size.
func New(pool *buffer.Pool, quotaElems int64) *Cache {
	be := pool.Device().BlockElems()
	quota := int(quotaElems / int64(be))
	if quota < 4 {
		quota = 4
	}
	pinQuota := quota
	if c := pool.Capacity(); pinQuota > c {
		pinQuota = c
	}
	return &Cache{
		pool:       pool.Session(pinQuota),
		blockElems: be,
		quota:      quota,
		entries:    make(map[Key]*entry),
		byName:     make(map[string]map[Key]*entry),
		lru:        list.New(),
		leaves:     make(map[any]LeafID),
	}
}

// RegisterLeaf records the catalog identity of a backing store (an
// *array.Vector, *array.Matrix, or sparse equivalent handed out by the
// catalog). DAGs whose leaves are all registered are cache-eligible;
// a session-local array that was never published keeps its DAG out of
// the cache entirely.
func (c *Cache) RegisterLeaf(store any, id LeafID) {
	if store == nil {
		return
	}
	c.mu.Lock()
	c.leaves[store] = id
	c.mu.Unlock()
}

// UnregisterLeaf drops a retired store from the leaf registry (its
// pointer may be reused once the storage is freed).
func (c *Cache) UnregisterLeaf(store any) {
	if store == nil {
		return
	}
	c.mu.Lock()
	delete(c.leaves, store)
	c.mu.Unlock()
}

// HashDAG computes canonical hashes for the DAG rooted at root, or nil
// if any leaf is not catalog-backed (making the DAG ineligible).
func (c *Cache) HashDAG(root *algebra.Node) *DAGHashes {
	if root == nil {
		return nil
	}
	return hashDAG(root, func(n *algebra.Node) (LeafID, bool) {
		var store any
		switch {
		case n.Vec != nil:
			store = n.Vec
		case n.Mat != nil:
			store = n.Mat
		case n.SVec != nil:
			store = n.SVec
		case n.SMat != nil:
			store = n.SMat
		default:
			return LeafID{}, false
		}
		c.mu.Lock()
		id, ok := c.leaves[store]
		c.mu.Unlock()
		return id, ok
	})
}

// Acquire looks up key and, on a hit, returns a handle that keeps the
// entry's storage alive until released.
func (c *Cache) Acquire(key Key) (*Handle, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok || c.closed {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	e.refs++
	c.lru.MoveToFront(e.elem)
	c.mu.Unlock()
	c.hits.Add(1)
	return &Handle{c: c, e: e}, true
}

// Vec returns the cached vector, or nil for a matrix entry.
func (h *Handle) Vec() *array.Vector { return h.e.vec }

// Mat returns the cached matrix, or nil for a vector entry.
func (h *Handle) Mat() *array.Matrix { return h.e.mat }

// Key returns the entry's canonical key.
func (h *Handle) Key() Key { return h.e.key }

// Release drops the handle's reference. If the entry was invalidated or
// evicted while referenced, the last release frees its storage.
func (h *Handle) Release() {
	c := h.c
	c.mu.Lock()
	h.e.refs--
	freeNow := h.e.dead && h.e.refs == 0
	c.mu.Unlock()
	if freeNow {
		freeEntry(h.e)
	}
}

// InstallVector copies src into cache-owned storage under key. deps are
// the published leaf names the result depends on (from DAGHashes.Deps).
// It reports whether the entry was admitted; a duplicate key (another
// session raced the same install) or refused admission are not errors.
func (c *Cache) InstallVector(key Key, deps []string, src *array.Vector) (bool, error) {
	e, err := c.admit(key, src.Blocks(), func(owner string) (any, error) {
		return array.NewVector(c.pool, owner, src.Len())
	})
	if e == nil || err != nil {
		return false, err
	}
	if err := copyVector(src, e.vec); err != nil {
		c.abortInstall(e)
		return false, err
	}
	c.finishInstall(e, deps)
	return true, nil
}

// InstallMatrix copies src into cache-owned storage under key, keeping
// its tile shape and linearization (see InstallVector).
func (c *Cache) InstallMatrix(key Key, deps []string, src *array.Matrix) (bool, error) {
	e, err := c.admit(key, src.Blocks(), func(owner string) (any, error) {
		return array.NewMatrix(c.pool, owner, src.Rows(), src.Cols(),
			array.Options{Shape: src.Shape(), Lin: src.Lin()})
	})
	if e == nil || err != nil {
		return false, err
	}
	if err := copyMatrix(src, e.mat); err != nil {
		c.abortInstall(e)
		return false, err
	}
	c.finishInstall(e, deps)
	return true, nil
}

// admit reserves quota for a new entry and allocates its storage. The
// entry enters the table immediately with a synthetic reference (refs
// pinned at 1) so a concurrent Clear marks it dead instead of freeing
// storage mid-copy; finishInstall/abortInstall drop that reference.
// Returns nil (no error) when admission refuses the entry.
func (c *Cache) admit(key Key, blocks int, alloc func(owner string) (any, error)) (*entry, error) {
	c.mu.Lock()
	if c.closed || blocks > c.quota {
		c.mu.Unlock()
		c.rejected.Add(1)
		return nil, nil
	}
	if _, dup := c.entries[key]; dup {
		c.mu.Unlock()
		return nil, nil
	}
	var victims []*entry
	for c.used+blocks > c.quota {
		v := c.evictLocked()
		if v == nil {
			// Everything still resident is held by a reader.
			c.mu.Unlock()
			for _, v := range victims {
				freeEntry(v)
			}
			c.rejected.Add(1)
			return nil, nil
		}
		victims = append(victims, v)
	}
	c.seq++
	owner := fmt.Sprintf("rescache.%d", c.seq)
	c.used += blocks
	c.mu.Unlock()
	for _, v := range victims {
		freeEntry(v)
	}

	store, err := alloc(owner)
	if err != nil {
		c.mu.Lock()
		c.used -= blocks
		c.mu.Unlock()
		return nil, err
	}
	e := &entry{key: key, blocks: blocks, refs: 1}
	switch s := store.(type) {
	case *array.Vector:
		e.vec = s
	case *array.Matrix:
		e.mat = s
	}
	c.mu.Lock()
	if c.closed {
		c.used -= blocks
		c.mu.Unlock()
		freeEntry(e)
		return nil, nil
	}
	if _, dup := c.entries[key]; dup {
		// Another session won the race while we allocated.
		c.used -= blocks
		c.mu.Unlock()
		freeEntry(e)
		return nil, nil
	}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.mu.Unlock()
	return e, nil
}

// finishInstall publishes a copied-in entry: records its invalidation
// deps and drops the synthetic install reference.
func (c *Cache) finishInstall(e *entry, deps []string) {
	c.mu.Lock()
	e.refs--
	if e.dead {
		freeNow := e.refs == 0
		c.mu.Unlock()
		if freeNow {
			freeEntry(e)
		}
		return
	}
	e.deps = deps
	for _, name := range deps {
		m := c.byName[name]
		if m == nil {
			m = make(map[Key]*entry)
			c.byName[name] = m
		}
		m[e.key] = e
	}
	c.mu.Unlock()
	c.installs.Add(1)
}

// abortInstall backs out an admitted entry whose copy failed.
func (c *Cache) abortInstall(e *entry) {
	c.mu.Lock()
	e.refs--
	if !e.dead {
		c.removeLocked(e)
		e.dead = true
	}
	freeNow := e.refs == 0
	c.mu.Unlock()
	if freeNow {
		freeEntry(e)
	}
}

// evictLocked drops the least-recently-used unreferenced entry and
// returns it for the caller to free outside the lock; nil if every
// entry is referenced. Callers hold c.mu.
func (c *Cache) evictLocked() *entry {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e.refs == 0 {
			c.removeLocked(e)
			e.dead = true
			c.evictions.Add(1)
			return e
		}
	}
	return nil
}

// removeLocked unlinks an entry from the table, LRU list, and name
// index, and returns its quota. Callers hold c.mu. Storage is NOT
// freed here — the caller frees it outside the lock once refs==0.
func (c *Cache) removeLocked(e *entry) {
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
	}
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
	for _, name := range e.deps {
		if m := c.byName[name]; m != nil {
			delete(m, e.key)
			if len(m) == 0 {
				delete(c.byName, name)
			}
		}
	}
	c.used -= e.blocks
}

// InvalidateName drops every entry that depends on the published array
// name. Called on every LWW Publish that supersedes a version and on
// every Delete; entries still held by a reader are marked dead and
// freed on last release (the reader keyed on the old version, so its
// view stays correct — this only reclaims the space eagerly).
func (c *Cache) InvalidateName(name string) {
	c.mu.Lock()
	m := c.byName[name]
	var free []*entry
	n := 0
	for _, e := range m {
		c.removeLocked(e)
		e.dead = true
		n++
		if e.refs == 0 {
			free = append(free, e)
		}
	}
	c.mu.Unlock()
	if n > 0 {
		c.invalidations.Add(int64(n))
	}
	for _, e := range free {
		freeEntry(e)
	}
}

// Clear drops every entry (the \cache clear command). Entries held by
// readers are marked dead and freed on last release.
func (c *Cache) Clear() {
	c.mu.Lock()
	var free []*entry
	for _, e := range c.entries {
		c.removeLocked(e)
		e.dead = true
		if e.refs == 0 {
			free = append(free, e)
		}
	}
	c.mu.Unlock()
	for _, e := range free {
		freeEntry(e)
	}
}

// Close clears the cache and refuses further installs/acquires. Called
// from DB.Close after all sessions have closed, so no live handles
// remain and all storage is freed here.
func (c *Cache) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.Clear()
}

// Snapshot returns the cache's counters.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	entries := int64(len(c.entries))
	bytes := int64(c.used) * int64(c.blockElems) * 8
	quota := int64(c.quota) * int64(c.blockElems) * 8
	c.mu.Unlock()
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Installs:      c.installs.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Rejected:      c.rejected.Load(),
		Entries:       entries,
		Bytes:         bytes,
		QuotaBytes:    quota,
	}
}

// Describe renders one line per live entry (the \cache command),
// sorted by key for deterministic output.
func (c *Cache) Describe() []string {
	c.mu.Lock()
	lines := make([]string, 0, len(c.entries))
	for _, e := range c.entries {
		kind := "vec"
		if e.mat != nil {
			kind = "mat"
		}
		lines = append(lines, fmt.Sprintf("%s %s blocks=%d refs=%d deps=%v",
			e.key, kind, e.blocks, e.refs, e.deps))
	}
	c.mu.Unlock()
	sort.Strings(lines)
	return lines
}

// freeEntry releases an entry's device storage and pool residency.
func freeEntry(e *entry) {
	if e.vec != nil {
		e.vec.Free()
	}
	if e.mat != nil {
		e.mat.Free()
	}
}

// copyVector block-copies src into dst (same length, same block size).
func copyVector(src, dst *array.Vector) error {
	for k := 0; k < src.Blocks(); k++ {
		sc, err := src.PinChunk(k)
		if err != nil {
			return err
		}
		dc, err := dst.PinChunkNew(k)
		if err != nil {
			sc.Release()
			return err
		}
		copy(dc.Data(), sc.Data())
		dc.MarkDirty()
		dc.Release()
		sc.Release()
	}
	return nil
}

// copyMatrix tile-copies src into dst (same dims, shape, and order).
func copyMatrix(src, dst *array.Matrix) error {
	gr, gc := src.GridDims()
	for ti := 0; ti < gr; ti++ {
		for tj := 0; tj < gc; tj++ {
			st, err := src.PinTile(ti, tj)
			if err != nil {
				return err
			}
			dt, err := dst.PinTileNew(ti, tj)
			if err != nil {
				st.Release()
				return err
			}
			copy(dt.Data(), st.Data())
			dt.MarkDirty()
			dt.Release()
			st.Release()
		}
	}
	return nil
}
