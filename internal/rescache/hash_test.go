package rescache

import (
	"fmt"
	"math/rand"
	"testing"

	"riot/internal/algebra"
	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
)

func testPool(t *testing.T) *buffer.Pool {
	t.Helper()
	return buffer.NewSharded(disk.NewDevice(64), 64, 4)
}

// newLeaf allocates a vector and registers it with the cache under a
// published identity, returning the store.
func newLeaf(t *testing.T, c *Cache, pool *buffer.Pool, name string, version int64, n int64) *array.Vector {
	t.Helper()
	v, err := array.NewVector(pool, fmt.Sprintf("cat.%s.v%d", name, version), n)
	if err != nil {
		t.Fatal(err)
	}
	c.RegisterLeaf(v, LeafID{Name: name, Version: version})
	return v
}

// buildDist constructs sqrt(x*x + 3*x) — Example 1's distance DAG — in
// its own graph over the given leaf store.
func buildDist(t *testing.T, x *array.Vector) *algebra.Node {
	t.Helper()
	g := algebra.NewGraph()
	src := g.SourceVec(x)
	xx, err := g.ElemBinary("*", src, src)
	if err != nil {
		t.Fatal(err)
	}
	x3, err := g.ScalarOp("*", src, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := g.ElemBinary("+", xx, x3)
	if err != nil {
		t.Fatal(err)
	}
	root, err := g.ElemUnary("sqrt", sum)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestHashNormalizesSessionIdentity: two sessions build the same
// expression over the same published array through *different* store
// handles (different graphs, different node IDs, different owner
// names). As long as the stores resolve to the same (name, version),
// the canonical keys must be equal.
func TestHashNormalizesSessionIdentity(t *testing.T) {
	pool := testPool(t)
	c := New(pool.Root(), 1<<20)
	defer c.Close()

	// Session 1 and session 2 each get their own store handle for the
	// same published leaf; the handles even wear session-prefixed owner
	// names, which the hash must not see.
	s1 := newLeaf(t, c, pool, "x", 7, 100)
	s2, err := array.NewVector(pool, "s2.cat.x.v7", 100)
	if err != nil {
		t.Fatal(err)
	}
	c.RegisterLeaf(s2, LeafID{Name: "x", Version: 7})

	r1 := buildDist(t, s1)
	r2 := buildDist(t, s2)
	h1 := c.HashDAG(r1)
	h2 := c.HashDAG(r2)
	if h1 == nil || h2 == nil {
		t.Fatal("eligible DAGs reported ineligible")
	}
	k1, _ := h1.Key(r1)
	k2, _ := h2.Key(r2)
	if k1 != k2 {
		t.Fatalf("same expression over same published leaf hashed differently:\n%x\n%x", k1, k2)
	}

	// A third session over a *newer version* of the leaf must differ.
	s3 := newLeaf(t, c, pool, "x", 8, 100)
	r3 := buildDist(t, s3)
	k3, _ := c.HashDAG(r3).Key(r3)
	if k3 == k1 {
		t.Fatal("new leaf version did not change the key")
	}
}

// TestHashCommutativeOperands: x+y and y+x (and x*y / y*x) share a key;
// non-commutative operators keep operand order.
func TestHashCommutativeOperands(t *testing.T) {
	pool := testPool(t)
	c := New(pool.Root(), 1<<20)
	defer c.Close()
	x := newLeaf(t, c, pool, "x", 1, 50)
	y := newLeaf(t, c, pool, "y", 1, 50)

	build := func(op string, a, b *array.Vector) *algebra.Node {
		g := algebra.NewGraph()
		n, err := g.ElemBinary(op, g.SourceVec(a), g.SourceVec(b))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	for _, op := range []string{"+", "*"} {
		xy := build(op, x, y)
		yx := build(op, y, x)
		kxy, _ := c.HashDAG(xy).Key(xy)
		kyx, _ := c.HashDAG(yx).Key(yx)
		if kxy != kyx {
			t.Fatalf("%s not commutative in the hash", op)
		}
	}
	for _, op := range []string{"-", "/"} {
		xy := build(op, x, y)
		yx := build(op, y, x)
		kxy, _ := c.HashDAG(xy).Key(xy)
		kyx, _ := c.HashDAG(yx).Key(yx)
		if kxy == kyx {
			t.Fatalf("%s collided across operand order", op)
		}
	}

	// Scalar-side normalization: 3*x == x*3, but 3-x != x-3.
	g := algebra.NewGraph()
	src := g.SourceVec(x)
	left, _ := g.ScalarOp("*", src, 3, true)
	right, _ := g.ScalarOp("*", src, 3, false)
	kl, _ := c.HashDAG(left).Key(left)
	kr, _ := c.HashDAG(right).Key(right)
	if kl != kr {
		t.Fatal("scalar-side * not normalized")
	}
	sl, _ := g.ScalarOp("-", src, 3, true)
	sr, _ := g.ScalarOp("-", src, 3, false)
	ksl, _ := c.HashDAG(sl).Key(sl)
	ksr, _ := c.HashDAG(sr).Key(sr)
	if ksl == ksr {
		t.Fatal("3-x collided with x-3")
	}
}

// TestHashNoCollisions: randomized DAGs over distinct shapes, scalar
// constants, operators, and leaf versions never collide. Every distinct
// structural signature must map to a distinct key.
func TestHashNoCollisions(t *testing.T) {
	pool := testPool(t)
	c := New(pool.Root(), 1<<20)
	defer c.Close()
	rng := rand.New(rand.NewSource(8))

	leaves := make([]*array.Vector, 6)
	for i := range leaves {
		leaves[i] = newLeaf(t, c, pool, fmt.Sprintf("l%d", i%3), int64(i), 40+int64(8*i))
	}

	seen := make(map[Key]string)
	record := func(n *algebra.Node, sig string) {
		h := c.HashDAG(n)
		if h == nil {
			t.Fatalf("ineligible: %s", sig)
		}
		k, _ := h.Key(n)
		if prev, ok := seen[k]; ok && prev != sig {
			t.Fatalf("collision between %q and %q", prev, sig)
		}
		seen[k] = sig
	}

	ops := []string{"+", "-", "*", "/"}
	fns := []string{"sqrt", "abs", "exp", "log"}
	for trial := 0; trial < 500; trial++ {
		g := algebra.NewGraph()
		li := rng.Intn(len(leaves))
		leaf := leaves[li]
		src := g.SourceVec(leaf)
		sig := fmt.Sprintf("leaf%d", li)
		n := src
		for d := 0; d < 1+rng.Intn(3); d++ {
			switch rng.Intn(3) {
			case 0:
				fn := fns[rng.Intn(len(fns))]
				n2, err := g.ElemUnary(fn, n)
				if err != nil {
					t.Fatal(err)
				}
				n, sig = n2, fmt.Sprintf("%s(%s)", fn, sig)
			case 1:
				op := ops[rng.Intn(len(ops))]
				s := float64(rng.Intn(5))
				n2, err := g.ScalarOp(op, n, s, false)
				if err != nil {
					t.Fatal(err)
				}
				n, sig = n2, fmt.Sprintf("(%s %s %g)", sig, op, s)
			case 2:
				op := ops[rng.Intn(len(ops))]
				n2, err := g.ElemBinary(op, n, src)
				if err != nil {
					t.Fatal(err)
				}
				canon := fmt.Sprintf("(%s %s leaf%d)", sig, op, li)
				if op == "+" || op == "*" {
					// Mirror the hash's commutative normalization in
					// the signature so x+y and y+x count as one.
					a, b := sig, fmt.Sprintf("leaf%d", li)
					if a > b {
						a, b = b, a
					}
					canon = fmt.Sprintf("(%s c%s %s)", a, op, b)
				}
				n, sig = n2, canon
			}
		}
		record(n, sig)
	}
	if len(seen) < 100 {
		t.Fatalf("trial generator degenerate: only %d distinct keys", len(seen))
	}
}

// TestHashStableAcrossProcesses pins exact key bytes for a reference
// DAG. The expectation is written down as a constant, so the test fails
// if the encoding ever depends on pointer values, map iteration order,
// or anything else that varies across process restarts — and it
// guards the on-disk-compatible encoding against accidental change.
func TestHashStableAcrossProcesses(t *testing.T) {
	pool := testPool(t)
	c := New(pool.Root(), 1<<20)
	defer c.Close()
	x := newLeaf(t, c, pool, "x", 1, 100)
	root := buildDist(t, x)
	k, _ := c.HashDAG(root).Key(root)

	const want = "870bfa72caf5ed08"
	if got := k.String(); got != want {
		t.Fatalf("reference key changed: got %s want %s (encoding no longer stable)", got, want)
	}

	// And re-deriving through fresh graphs/stores in the same process
	// must reproduce it too.
	for i := 0; i < 3; i++ {
		s, err := array.NewVector(pool, fmt.Sprintf("again%d", i), 100)
		if err != nil {
			t.Fatal(err)
		}
		c.RegisterLeaf(s, LeafID{Name: "x", Version: 1})
		r := buildDist(t, s)
		k2, _ := c.HashDAG(r).Key(r)
		if k2 != k {
			t.Fatalf("rebuild %d produced different key", i)
		}
	}
}

// TestHashIneligibleLeaf: a DAG containing any unregistered
// (session-local) leaf is ineligible as a whole.
func TestHashIneligibleLeaf(t *testing.T) {
	pool := testPool(t)
	c := New(pool.Root(), 1<<20)
	defer c.Close()
	x := newLeaf(t, c, pool, "x", 1, 50)
	local, err := array.NewVector(pool, "local", 50)
	if err != nil {
		t.Fatal(err)
	}
	g := algebra.NewGraph()
	n, err := g.ElemBinary("+", g.SourceVec(x), g.SourceVec(local))
	if err != nil {
		t.Fatal(err)
	}
	if h := c.HashDAG(n); h != nil {
		t.Fatal("DAG with session-local leaf should be ineligible")
	}
}
