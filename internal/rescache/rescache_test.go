package rescache

import (
	"fmt"
	"sync"
	"testing"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
)

// fillVector writes f(i) into every element.
func fillVector(t *testing.T, v *array.Vector, f func(i int64) float64) {
	t.Helper()
	for k := 0; k < v.Blocks(); k++ {
		c, err := v.PinChunkNew(k)
		if err != nil {
			t.Fatal(err)
		}
		d := c.Data()
		for i := range d {
			d[i] = f(c.Lo + int64(i))
		}
		c.MarkDirty()
		c.Release()
	}
}

func keyOf(b byte) Key {
	var k Key
	k[0] = b
	return k
}

// TestInstallAcquireRoundTrip: an installed vector comes back with the
// same values through an independent handle, and the copy is
// cache-owned (freeing the source does not disturb the cached copy).
func TestInstallAcquireRoundTrip(t *testing.T) {
	pool := buffer.NewSharded(disk.NewDevice(16), 64, 4)
	c := New(pool, 16*64)
	defer c.Close()

	src, err := array.NewVector(pool, "src", 100)
	if err != nil {
		t.Fatal(err)
	}
	fillVector(t, src, func(i int64) float64 { return float64(3 * i) })
	ok, err := c.InstallVector(keyOf(1), []string{"x"}, src)
	if err != nil || !ok {
		t.Fatalf("install: ok=%v err=%v", ok, err)
	}
	src.Free()

	h, hit := c.Acquire(keyOf(1))
	if !hit {
		t.Fatal("expected hit")
	}
	defer h.Release()
	for i := int64(0); i < 100; i++ {
		got, err := h.Vec().At(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != float64(3*i) {
			t.Fatalf("elem %d: got %g want %g", i, got, float64(3*i))
		}
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Installs != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestQuotaEvictsLRU: installs past the block quota evict the
// least-recently-acquired entries, and an entry too big for the whole
// quota is rejected outright.
func TestQuotaEvictsLRU(t *testing.T) {
	be := 16
	pool := buffer.NewSharded(disk.NewDevice(be), 64, 4)
	// Quota of 8 blocks; each 2-block entry -> 4 fit.
	c := New(pool, int64(8*be))
	defer c.Close()

	mk := func(name string) *array.Vector {
		v, err := array.NewVector(pool, name, int64(2*be))
		if err != nil {
			t.Fatal(err)
		}
		fillVector(t, v, func(i int64) float64 { return 1 })
		return v
	}
	for i := byte(1); i <= 4; i++ {
		if ok, err := c.InstallVector(keyOf(i), nil, mk(fmt.Sprintf("s%d", i))); !ok || err != nil {
			t.Fatalf("install %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Touch entry 1 so entry 2 is the LRU victim.
	h, _ := c.Acquire(keyOf(1))
	h.Release()
	if ok, err := c.InstallVector(keyOf(5), nil, mk("s5")); !ok || err != nil {
		t.Fatalf("install 5: ok=%v err=%v", ok, err)
	}
	if _, hit := c.Acquire(keyOf(2)); hit {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	if _, hit := c.Acquire(keyOf(1)); !hit {
		t.Fatal("recently-used entry 1 should have survived")
	}
	if st := c.Snapshot(); st.Evictions != 1 {
		t.Fatalf("evictions: %+v", st)
	}

	// 9 blocks can never fit an 8-block quota: rejected, not evicted.
	big, err := array.NewVector(pool, "big", int64(9*be))
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.InstallVector(keyOf(9), nil, big); ok {
		t.Fatal("over-quota entry admitted")
	}
	if st := c.Snapshot(); st.Rejected == 0 {
		t.Fatalf("expected a rejected install: %+v", st)
	}
}

// TestEvictionSkipsReferencedEntries: an entry held by a reader is
// never evicted (its storage stays valid under the handle); if every
// resident entry is referenced, admission refuses the newcomer rather
// than unpinning anyone.
func TestEvictionSkipsReferencedEntries(t *testing.T) {
	be := 16
	pool := buffer.NewSharded(disk.NewDevice(be), 64, 4)
	c := New(pool, int64(4*be)) // room for exactly one 4-block entry
	defer c.Close()

	mk := func(name string) *array.Vector {
		v, err := array.NewVector(pool, name, int64(4*be))
		if err != nil {
			t.Fatal(err)
		}
		fillVector(t, v, func(i int64) float64 { return float64(i) })
		return v
	}
	if ok, err := c.InstallVector(keyOf(1), nil, mk("a")); !ok || err != nil {
		t.Fatalf("install: %v %v", ok, err)
	}
	h, hit := c.Acquire(keyOf(1))
	if !hit {
		t.Fatal("miss")
	}
	// The only resident entry is referenced: the newcomer must bounce.
	if ok, err := c.InstallVector(keyOf(2), nil, mk("b")); ok || err != nil {
		t.Fatalf("admission should refuse while all entries referenced: %v %v", ok, err)
	}
	// The held entry must still read correctly.
	if got, err := h.Vec().At(7); err != nil || got != 7 {
		t.Fatalf("held entry corrupted: %g %v", got, err)
	}
	h.Release()
	if ok, err := c.InstallVector(keyOf(2), nil, mk("b2")); !ok || err != nil {
		t.Fatalf("install after release: %v %v", ok, err)
	}
}

// TestInvalidateName: republication drops exactly the dependent
// entries; a reader holding a handle keeps valid storage until release.
func TestInvalidateName(t *testing.T) {
	be := 16
	pool := buffer.NewSharded(disk.NewDevice(be), 64, 4)
	c := New(pool, int64(32*be))
	defer c.Close()

	mk := func(name string) *array.Vector {
		v, err := array.NewVector(pool, name, int64(be))
		if err != nil {
			t.Fatal(err)
		}
		fillVector(t, v, func(i int64) float64 { return 42 })
		return v
	}
	c.InstallVector(keyOf(1), []string{"x"}, mk("a"))
	c.InstallVector(keyOf(2), []string{"x", "y"}, mk("b"))
	c.InstallVector(keyOf(3), []string{"y"}, mk("c"))

	h, _ := c.Acquire(keyOf(2)) // held across the invalidation
	c.InvalidateName("x")

	if _, hit := c.Acquire(keyOf(1)); hit {
		t.Fatal("entry 1 depends on x; should be gone")
	}
	if _, hit := c.Acquire(keyOf(2)); hit {
		t.Fatal("entry 2 depends on x; should be gone for new readers")
	}
	if _, hit3 := c.Acquire(keyOf(3)); !hit3 {
		t.Fatal("entry 3 does not depend on x; should survive")
	}
	// The old reader's view stays intact until it releases.
	if got, err := h.Vec().At(3); err != nil || got != 42 {
		t.Fatalf("held invalidated entry corrupted: %g %v", got, err)
	}
	h.Release()
	if st := c.Snapshot(); st.Invalidations != 2 {
		t.Fatalf("invalidations: %+v", st)
	}
}

// TestCloseFreesStorage: Close frees all cache-owned device extents.
func TestCloseFreesStorage(t *testing.T) {
	be := 16
	dev := disk.NewDevice(be)
	pool := buffer.NewSharded(dev, 64, 4)
	c := New(pool, int64(32*be))
	v, err := array.NewVector(pool, "s", int64(4*be))
	if err != nil {
		t.Fatal(err)
	}
	fillVector(t, v, func(i int64) float64 { return 1 })
	c.InstallVector(keyOf(1), nil, v)
	c.Close()
	for _, o := range dev.Owners() {
		if len(o) >= 8 && o[:8] == "rescache" {
			t.Fatalf("cache-owned extent %q leaked past Close", o)
		}
	}
	if _, hit := c.Acquire(keyOf(1)); hit {
		t.Fatal("closed cache served a hit")
	}
}

// TestConcurrentInstallAcquireInvalidate hammers one cache from many
// goroutines under -race: concurrent duplicate installs, acquires with
// value checks, invalidations, and clears must stay consistent and
// never free storage under a reader.
func TestConcurrentInstallAcquireInvalidate(t *testing.T) {
	be := 16
	pool := buffer.NewSharded(disk.NewDevice(be), 256, 4)
	c := New(pool, int64(8*be)) // tight quota: constant eviction pressure
	defer c.Close()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				kb := byte(i % 5)
				src, err := array.NewVector(pool, fmt.Sprintf("w%d.%d", w, i), int64(2*be))
				if err != nil {
					t.Error(err)
					return
				}
				fillVector(t, src, func(int64) float64 { return float64(kb) })
				if _, err := c.InstallVector(keyOf(kb), []string{fmt.Sprintf("n%d", kb)}, src); err != nil {
					t.Error(err)
					return
				}
				src.Free()
				if h, hit := c.Acquire(keyOf(kb)); hit {
					got, err := h.Vec().At(int64(i % (2 * be)))
					if err != nil || got != float64(kb) {
						t.Errorf("stale or corrupt read: key %d got %g err %v", kb, got, err)
					}
					h.Release()
				}
				switch i % 10 {
				case 3:
					c.InvalidateName(fmt.Sprintf("n%d", kb))
				case 7:
					c.Clear()
				}
			}
		}(w)
	}
	wg.Wait()
}
