// Canonical structural hashing of expression DAGs.
//
// Two sessions that build "sqrt(x*x + y)" over the same published
// arrays must produce the same cache key even though their DAGs live in
// different graphs, their nodes carry different IDs, and their stored
// temporaries wear different session prefixes. The hash therefore never
// looks at node identity, node IDs, variable names, or array owner
// names: a leaf contributes only the catalog identity of its backing
// store — (published name, catalog version) — and an interior node
// contributes its operator, its scalar parameters (exact float64 bits),
// and its children's hashes. Commutative operators (+, *) sort their
// operand hashes, so x+y and y+x share one entry; the IEEE results are
// bit-identical either way, so the shared value is exact, not
// approximate.
//
// The encoding is a fixed byte layout fed to SHA-256 — no Go maps, no
// pointers, no iteration-order dependence — so a key is stable across
// processes and machine restarts. Correctness under republication does
// not rest on invalidation: the catalog version of every leaf is part
// of the key, so a DAG over a republished array hashes to a different
// key and can never alias a stale entry.
package rescache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"

	"riot/internal/algebra"
)

// Key is a canonical DAG hash: the cache's lookup key.
type Key [32]byte

// String renders the key's first 8 bytes as hex (Explain, \cache).
func (k Key) String() string { return hex.EncodeToString(k[:8]) }

// LeafID is the stable identity of a catalog-backed leaf array: the
// published name plus the catalog version that committed it. Version
// makes every republication a distinct leaf, which is what makes a
// stale cache hit structurally impossible.
type LeafID struct {
	Name    string
	Version int64
}

// DAGHashes is the result of hashing one DAG: a canonical key for every
// node, plus each node's leaf dependencies (the published names whose
// republication invalidates entries keyed under that node).
type DAGHashes struct {
	keys map[*algebra.Node]Key
	deps map[*algebra.Node][]string
}

// Key returns the canonical hash for a node in the hashed DAG.
func (h *DAGHashes) Key(n *algebra.Node) (Key, bool) {
	if h == nil {
		return Key{}, false
	}
	k, ok := h.keys[n]
	return k, ok
}

// Deps returns the sorted published-array names the node depends on.
func (h *DAGHashes) Deps(n *algebra.Node) []string {
	if h == nil {
		return nil
	}
	return h.deps[n]
}

// hashDAG computes canonical hashes for every node reachable from root.
// resolve maps a leaf's backing store to its catalog identity; if any
// leaf is unresolvable (a session-local array with no published
// identity) the whole DAG is ineligible and hashDAG returns nil.
func hashDAG(root *algebra.Node, resolve func(n *algebra.Node) (LeafID, bool)) *DAGHashes {
	h := &DAGHashes{
		keys: make(map[*algebra.Node]Key),
		deps: make(map[*algebra.Node][]string),
	}
	if !h.walk(root, resolve) {
		return nil
	}
	return h
}

// commutative reports whether an elementwise binary operator may have
// its operands reordered without changing the IEEE result bits.
func commutative(op string) bool { return op == "+" || op == "*" }

// walk hashes the subtree rooted at n, memoizing into h. It returns
// false as soon as an unresolvable leaf is found.
func (h *DAGHashes) walk(n *algebra.Node, resolve func(n *algebra.Node) (LeafID, bool)) bool {
	if _, ok := h.keys[n]; ok {
		return true
	}
	for _, k := range n.Kids {
		if !h.walk(k, resolve) {
			return false
		}
	}
	enc := sha256.New()
	put := func(b []byte) { enc.Write(b) }
	putStr := func(s string) {
		var lb [8]byte
		binary.LittleEndian.PutUint64(lb[:], uint64(len(s)))
		put(lb[:])
		put([]byte(s))
	}
	putU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		put(b[:])
	}
	putF64 := func(v float64) { putU64(math.Float64bits(v)) }

	// Every node starts with a kind tag and its shape: the shape is
	// derivable from leaves and operators, but pinning it keeps a
	// hypothetical hash collision from ever crossing shapes.
	putU64(uint64(n.Op))
	putU64(uint64(n.Shape.Rows))
	putU64(uint64(n.Shape.Cols))
	if n.Shape.Vector {
		putU64(1)
	} else {
		putU64(0)
	}

	var deps []string
	switch n.Op {
	case algebra.OpSourceVec, algebra.OpSourceMat:
		id, ok := resolve(n)
		if !ok {
			return false
		}
		putStr(id.Name)
		putU64(uint64(id.Version))
		deps = []string{id.Name}
	case algebra.OpElemBinary:
		putStr(n.BinOp)
		a, b := h.keys[n.Kids[0]], h.keys[n.Kids[1]]
		if commutative(n.BinOp) && compareKeys(a, b) > 0 {
			a, b = b, a
		}
		put(a[:])
		put(b[:])
		deps = mergeDeps(h.deps[n.Kids[0]], h.deps[n.Kids[1]])
	case algebra.OpElemUnary, algebra.OpReduce:
		putStr(n.Fn)
		k := h.keys[n.Kids[0]]
		put(k[:])
		deps = h.deps[n.Kids[0]]
	case algebra.OpScalarOp:
		putStr(n.BinOp)
		putF64(n.Scalar)
		left := n.ScalarLeft && !commutative(n.BinOp)
		if left {
			putU64(1)
		} else {
			putU64(0)
		}
		k := h.keys[n.Kids[0]]
		put(k[:])
		deps = h.deps[n.Kids[0]]
	case algebra.OpUpdateMask:
		putStr(n.BinOp)
		putF64(n.Scalar)
		putF64(n.Scalar2)
		k := h.keys[n.Kids[0]]
		put(k[:])
		deps = h.deps[n.Kids[0]]
	case algebra.OpRange:
		putU64(uint64(n.Lo))
		putU64(uint64(n.Hi))
		k := h.keys[n.Kids[0]]
		put(k[:])
		deps = h.deps[n.Kids[0]]
	case algebra.OpGather, algebra.OpMatMul:
		// A non-standard ring changes the result, so it must feed the
		// key; the default ring appends nothing, keeping every existing
		// hash byte-identical.
		if n.Ring != "" {
			putStr("ring:" + n.Ring)
		}
		a, b := h.keys[n.Kids[0]], h.keys[n.Kids[1]]
		put(a[:])
		put(b[:])
		deps = mergeDeps(h.deps[n.Kids[0]], h.deps[n.Kids[1]])
	default:
		return false
	}

	var key Key
	copy(key[:], enc.Sum(nil))
	h.keys[n] = key
	h.deps[n] = deps
	return true
}

// compareKeys orders two keys bytewise (the commutative-operand sort).
func compareKeys(a, b Key) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// mergeDeps unions two sorted dependency lists.
func mergeDeps(a, b []string) []string {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Strings(out)
	j := 0
	for i := 1; i < len(out); i++ {
		if out[i] != out[j] {
			j++
			out[j] = out[i]
		}
	}
	return out[:j+1]
}
