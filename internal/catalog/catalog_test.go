package catalog

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
	"riot/internal/sparse"
)

func newPool(t *testing.T, blockElems int, frames int) *buffer.Pool {
	t.Helper()
	return buffer.NewSharded(disk.NewDevice(blockElems), frames, 4)
}

func fillVector(t *testing.T, pool *buffer.Pool, name string, n int64, f func(int64) float64) *array.Vector {
	t.Helper()
	v, err := array.NewVector(pool, name, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Fill(f); err != nil {
		t.Fatal(err)
	}
	return v
}

func fillMatrix(t *testing.T, pool *buffer.Pool, name string, r, c int64, f func(i, j int64) float64) *array.Matrix {
	t.Helper()
	m, err := array.NewMatrix(pool, name, r, c, array.Options{Shape: array.SquareTiles, Lin: array.ZOrder})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fill(f); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRestartRoundTrip is the acceptance criterion: publish named
// arrays, checkpoint, then open the directory over a fresh device (a new
// process) and read back identical values.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const B = 64

	pool := newPool(t, B, 64)
	cat, err := Open(dir, pool)
	if err != nil {
		t.Fatal(err)
	}
	src := fillVector(t, pool, "src", 1000, func(i int64) float64 { return float64(3*i + 1) })
	if _, err := cat.PutVector("x", src); err != nil {
		t.Fatal(err)
	}
	msrc := fillMatrix(t, pool, "msrc", 50, 37, func(i, j int64) float64 { return float64(i*100 + j) })
	if _, err := cat.PutMatrix("m", msrc); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new device, pool, and catalog over the same dir.
	pool2 := newPool(t, B, 64)
	cat2, err := Open(dir, pool2)
	if err != nil {
		t.Fatal(err)
	}
	if got := cat2.List(); len(got) != 2 || got[0] != "m" || got[1] != "x" {
		t.Fatalf("List() = %v, want [m x]", got)
	}
	e, ok := cat2.Get("x")
	if !ok || e.Kind != KindVector {
		t.Fatalf("Get(x) = %+v, %v", e, ok)
	}
	if e.Vec.Len() != 1000 {
		t.Fatalf("restored length %d, want 1000", e.Vec.Len())
	}
	for _, i := range []int64{0, 1, 63, 64, 999} {
		got, err := e.Vec.At(i)
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(3*i + 1); got != want {
			t.Fatalf("x[%d] = %g, want %g", i, got, want)
		}
	}
	me, ok := cat2.Get("m")
	if !ok || me.Kind != KindMatrix {
		t.Fatalf("Get(m) = %+v, %v", me, ok)
	}
	if me.Mat.Rows() != 50 || me.Mat.Cols() != 37 {
		t.Fatalf("restored dims %dx%d, want 50x37", me.Mat.Rows(), me.Mat.Cols())
	}
	if me.Mat.Lin() != array.ZOrder {
		t.Fatalf("restored linearization %v, want zorder", me.Mat.Lin())
	}
	for i := int64(0); i < 50; i += 7 {
		for j := int64(0); j < 37; j += 5 {
			got, err := me.Mat.At(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if want := float64(i*100 + j); got != want {
				t.Fatalf("m[%d,%d] = %g, want %g", i, j, got, want)
			}
		}
	}
}

// TestLastWriterWins: republishing a name replaces it for new readers
// while old handles stay readable.
func TestLastWriterWins(t *testing.T) {
	pool := newPool(t, 64, 64)
	cat, err := Open(t.TempDir(), pool)
	if err != nil {
		t.Fatal(err)
	}
	v1 := fillVector(t, pool, "v1", 10, func(i int64) float64 { return 1 })
	e1, err := cat.PutVector("x", v1)
	if err != nil {
		t.Fatal(err)
	}
	v2 := fillVector(t, pool, "v2", 10, func(i int64) float64 { return 2 })
	if _, err := cat.PutVector("x", v2); err != nil {
		t.Fatal(err)
	}
	cur, ok := cat.Get("x")
	if !ok {
		t.Fatal("x vanished")
	}
	if got, _ := cur.Vec.At(0); got != 2 {
		t.Fatalf("current x[0] = %g, want 2 (last writer)", got)
	}
	// The superseded handle still reads its snapshot.
	if got, _ := e1.Vec.At(0); got != 1 {
		t.Fatalf("old handle x[0] = %g, want 1", got)
	}
	if cur.Version <= e1.Version {
		t.Fatalf("version did not advance: %d then %d", e1.Version, cur.Version)
	}
}

func TestDelete(t *testing.T) {
	pool := newPool(t, 64, 64)
	cat, err := Open(t.TempDir(), pool)
	if err != nil {
		t.Fatal(err)
	}
	v := fillVector(t, pool, "v", 5, func(i int64) float64 { return float64(i) })
	if _, err := cat.PutVector("x", v); err != nil {
		t.Fatal(err)
	}
	if ok, err := cat.Delete("x"); err != nil || !ok {
		t.Fatalf("Delete(x) = %v, %v", ok, err)
	}
	if ok, err := cat.Delete("x"); err != nil || ok {
		t.Fatalf("second Delete(x) = %v, %v", ok, err)
	}
	if _, ok := cat.Get("x"); ok {
		t.Fatal("x still visible after delete")
	}
}

// TestCheckpointCapturesDirtyFrames: blocks still dirty in the pool (the
// publish copy is never explicitly flushed) must round-trip.
func TestCheckpointCapturesDirtyFrames(t *testing.T) {
	dir := t.TempDir()
	pool := newPool(t, 64, 1024) // big pool: nothing evicted, all dirty
	cat, err := Open(dir, pool)
	if err != nil {
		t.Fatal(err)
	}
	src := fillVector(t, pool, "src", 500, func(i int64) float64 { return float64(i) * 0.5 })
	if _, err := cat.PutVector("x", src); err != nil {
		t.Fatal(err)
	}
	if err := cat.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pool2 := newPool(t, 64, 64)
	cat2, err := Open(dir, pool2)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := cat2.Get("x")
	if got, _ := e.Vec.At(499); got != 249.5 {
		t.Fatalf("x[499] = %g, want 249.5", got)
	}
}

func TestRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName)

	// Wrong magic.
	if err := os.WriteFile(path, []byte("NOTRIOT!junkjunk"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, newPool(t, 64, 16)); err == nil {
		t.Fatal("Open accepted a file with bad magic")
	}

	// Right magic, truncated payload.
	pool := newPool(t, 64, 64)
	cat, err := Open(t.TempDir(), pool)
	if err != nil {
		t.Fatal(err)
	}
	v := fillVector(t, pool, "v", 100, func(i int64) float64 { return float64(i) })
	if _, err := cat.PutVector("x", v); err != nil {
		t.Fatal(err)
	}
	if err := cat.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(filepath.Join(cat.Dir(), FileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, whole[:len(whole)-16], 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, newPool(t, 64, 16)); err == nil {
		t.Fatal("Open accepted a truncated catalog")
	}

	// Block-size mismatch.
	if err := os.WriteFile(path, whole, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, newPool(t, 128, 16)); err == nil {
		t.Fatal("Open accepted a catalog with mismatched block size")
	}
}

// TestConcurrentPutGet hammers the catalog from many goroutines; run
// under -race.
func TestConcurrentPutGet(t *testing.T) {
	pool := newPool(t, 64, 256)
	cat, err := Open(t.TempDir(), pool)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 8; round++ {
				name := string(rune('a' + w))
				src, err := array.NewVector(pool, name+"-src", 64)
				if err != nil {
					t.Error(err)
					return
				}
				val := float64(w*100 + round)
				if err := src.Fill(func(int64) float64 { return val }); err != nil {
					t.Error(err)
					return
				}
				if _, err := cat.PutVector("shared", src); err != nil {
					t.Error(err)
					return
				}
				if e, ok := cat.Get("shared"); ok {
					if _, err := e.Vec.At(0); err != nil {
						t.Errorf("read of live entry failed: %v", err)
						return
					}
				}
				src.Free()
			}
		}(w)
	}
	wg.Wait()
	if _, ok := cat.Get("shared"); !ok {
		t.Fatal("shared vanished after concurrent puts")
	}
}

// TestSparseRestartRoundTrip publishes sparse entries — a banded sparse
// matrix and a mostly-empty sparse vector — checkpoints, and reopens the
// directory over a fresh device. Values AND density statistics (nnz,
// per-tile directory, block count) must survive: an all-zero tile still
// costs no block after restart.
func TestSparseRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const B = 64

	pool := newPool(t, B, 64)
	cat, err := Open(dir, pool)
	if err != nil {
		t.Fatal(err)
	}
	msrc := fillMatrix(t, pool, "msrc", 60, 60, func(i, j int64) float64 {
		d := i - j
		if d < 0 {
			d = -d
		}
		if d <= 1 {
			return float64(i + j + 1)
		}
		return 0
	})
	sm, err := sparse.FromDense(pool, "sm", msrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.PutSparseMatrix("adj", sm); err != nil {
		t.Fatal(err)
	}
	sv, err := sparse.NewVector(pool, "svec", 500, func(lo, hi int64, buf []float64) error {
		for i := lo; i < hi; i++ {
			if i%97 == 0 {
				buf[i-lo] = float64(i + 1)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.PutSparseVector("picks", sv); err != nil {
		t.Fatal(err)
	}
	if err := cat.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	pool2 := newPool(t, B, 64)
	cat2, err := Open(dir, pool2)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := cat2.Get("adj")
	if !ok || e.Kind != KindSparseMatrix {
		t.Fatalf("adj restored as %+v", e)
	}
	if e.SMat.NNZ() != sm.NNZ() || e.SMat.Blocks() != sm.Blocks() {
		t.Fatalf("adj stats: nnz=%d blocks=%d, want %d/%d", e.SMat.NNZ(), e.SMat.Blocks(), sm.NNZ(), sm.Blocks())
	}
	gr, gc := sm.GridDims()
	for ti := 0; ti < gr; ti++ {
		for tj := 0; tj < gc; tj++ {
			if e.SMat.TileNNZ(ti, tj) != sm.TileNNZ(ti, tj) {
				t.Fatalf("tile (%d,%d) nnz drifted", ti, tj)
			}
		}
	}
	for i := int64(0); i < 60; i++ {
		for j := int64(0); j < 60; j++ {
			want, _ := msrc.At(i, j)
			got, err := e.SMat.At(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("adj (%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
	ev, ok := cat2.Get("picks")
	if !ok || ev.Kind != KindSparseVector {
		t.Fatalf("picks restored as %+v", ev)
	}
	if ev.SVec.NNZ() != sv.NNZ() || ev.SVec.Blocks() != sv.Blocks() {
		t.Fatalf("picks stats: nnz=%d blocks=%d, want %d/%d", ev.SVec.NNZ(), ev.SVec.Blocks(), sv.NNZ(), sv.Blocks())
	}
	for i := int64(0); i < 500; i++ {
		want, _ := sv.At(i)
		got, err := ev.SVec.At(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("picks [%d] = %g, want %g", i, got, want)
		}
	}
}
