// Package catalog implements RIOT's durable catalog of named arrays:
// the layer that moves named numerical objects out of a process's
// transient heap and into database-grade storage, which is the paper's
// core argument applied to object lifetime rather than object access.
//
// A Catalog binds a host-filesystem directory to the simulated device
// behind a buffer pool. Named arrays published with PutVector/PutMatrix
// are copied into catalog-owned extents on the device (so they survive
// the publishing session), and Checkpoint serializes every entry —
// metadata page plus raw tile payloads — into the directory with an
// atomic write-then-rename (followed by a directory fsync, so the
// rename itself survives a crash). Opening the same directory later
// replays the file into a fresh device, so a new process sees the same
// named arrays with identical values.
//
// # Write-ahead logging
//
// Checkpoints alone lose everything published since the last explicit
// Checkpoint call. OpenWith an Options.WAL mode other than WALOff adds
// a write-ahead log (internal/wal) underneath the catalog: every
// publish appends a framed, CRC-checked record carrying the entry's
// full payload, every delete appends its name, and — in WALAlways mode
// — the publish is acknowledged only after an fsync'd group flush.
// Open replays the log over the last checkpoint: records at or below
// the checkpoint's durable LSN are skipped (idempotent replay), torn
// tails are truncated by checksum, and every acknowledged commit
// survives a crash at any point, kill -9 included.
//
// With a WAL the checkpoint becomes incremental: only entries dirty
// since the last checkpoint serialize their payloads (into an immutable
// segment file); clean entries reference the segment that already holds
// them. A successful checkpoint rotates the WAL down to an empty log.
//
// Publishing is last-writer-wins: a Put under the catalog lock replaces
// the table entry in one step, and readers that already hold the old
// version keep a valid handle (superseded storage is retired, not
// freed, until Close). All methods are safe for concurrent use by many
// sessions.
//
// # On-disk formats
//
// Checkpoint-only catalogs (WALOff) write one file, catalog.riot,
// little-endian, exactly as every version of this package has:
//
//	[8]byte  magic "RIOTCAT1"
//	uint32   block size in float64 elements (must match the device)
//	uint32   entry count
//	entries:
//	  uint32 name length, name bytes
//	  uint8  kind (0 vector, 1 matrix, 2 sparse matrix, 3 sparse vector)
//	  uint8  tile shape, uint8 linearization, uint8 reserved
//	  int64  rows, int64 cols
//	  uint32 block count
//	  sparse kinds only: uint32 directory length, then that many
//	    uint32 per-tile (per-chunk) nonzero counts — the density
//	    statistics the planner reads, persisted with the data
//	  block payloads: count × blockElems × 8 bytes (float64 bits);
//	    sparse kinds store only their non-empty tiles' payloads, in
//	    row-major tile order
//
// WAL-backed catalogs write catalog.riot as a manifest ("RIOTCAT2"):
// the same per-entry metadata plus the entry's publish LSN and a
// (segment generation, byte offset) reference into an immutable payload
// segment file catalog.seg-<gen>.riot ("RIOTSEG1" header, then raw
// block payloads). The manifest header carries the WAL LSN the
// checkpoint covers and the segment generation counter. wal.riot is the
// log itself (see internal/wal for its format).
//
// Both formats are versioned by magic; a file whose magic or block size
// does not match is rejected rather than guessed at. Sparse entries
// restore with their directories intact, so an all-zero tile still
// costs no block after a restart.
package catalog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
	"riot/internal/sparse"
	"riot/internal/wal"
)

// Magic identifies a checkpoint-only catalog file (format version 1).
const Magic = "RIOTCAT1"

// MagicV2 identifies a WAL-backed catalog manifest whose entry payloads
// live in segment files.
const MagicV2 = "RIOTCAT2"

// SegMagic identifies a payload segment file.
const SegMagic = "RIOTSEG1"

// FileName is the catalog (or manifest) file inside the directory.
const FileName = "catalog.riot"

// segPrefix and segSuffix bracket the generation number in a segment
// file's name.
const (
	segPrefix = "catalog.seg-"
	segSuffix = ".riot"
)

// segFileName returns the payload segment file for one checkpoint
// generation.
func segFileName(gen uint64) string {
	return segPrefix + strconv.FormatUint(gen, 10) + segSuffix
}

// Kind distinguishes stored vectors from stored matrices.
type Kind uint8

// Entry kinds.
const (
	KindVector       Kind = 0
	KindMatrix       Kind = 1
	KindSparseMatrix Kind = 2
	KindSparseVector Kind = 3
)

// WALMode selects the catalog's write-ahead-log durability mode.
type WALMode int

// WAL modes.
const (
	// WALOff keeps the catalog checkpoint-only: no log file, the
	// legacy RIOTCAT1 checkpoint format, behavior identical to the
	// pre-WAL engine.
	WALOff WALMode = iota
	// WALAlways acknowledges each publish after an fsync'd group
	// flush: acknowledged commits survive kill -9.
	WALAlways
	// WALInterval acknowledges publishes immediately and fsyncs the
	// log on a background timer (loss window = the flush interval).
	WALInterval
)

// Options configure OpenWith beyond the directory and pool.
type Options struct {
	// WAL selects the durability mode (default WALOff: checkpoint-only,
	// the seed behavior).
	WAL WALMode
	// FlushInterval is WALInterval's fsync period (default 50ms).
	FlushInterval time.Duration
	// WALInjector intercepts WAL appends for fault-injection tests.
	WALInjector wal.Injector
}

// Entry is one named array in the catalog. Exactly one of Vec, Mat,
// SMat, and SVec is non-nil, per Kind. Entries are immutable once
// published: a new Put under the same name creates a new Entry rather
// than mutating this one, so a handle obtained from Get stays valid
// (last-writer-wins for future readers, stable snapshots for current
// ones).
type Entry struct {
	Name    string
	Kind    Kind
	Version int64
	// LSN is the WAL sequence number that committed this entry (0 when
	// the catalog runs without a WAL, or for entries restored from a
	// pre-WAL checkpoint). Replay uses it for idempotency: records at
	// or below a checkpoint's durable LSN are never re-applied.
	LSN  uint64
	Vec  *array.Vector
	Mat  *array.Matrix
	SMat *sparse.Matrix
	SVec *sparse.Vector

	// segGen/segOff locate the entry's payload in a checkpoint segment
	// file; segGen 0 means the payload has no durable segment yet (the
	// entry is dirty and the next incremental checkpoint writes it).
	// Guarded by the catalog lock.
	segGen uint64
	segOff int64
}

// Rows returns the row count (the length for vectors).
func (e *Entry) Rows() int64 {
	switch e.Kind {
	case KindVector:
		return e.Vec.Len()
	case KindSparseVector:
		return e.SVec.Len()
	case KindSparseMatrix:
		return e.SMat.Rows()
	}
	return e.Mat.Rows()
}

// Cols returns the column count (1 for vectors).
func (e *Entry) Cols() int64 {
	switch e.Kind {
	case KindVector, KindSparseVector:
		return 1
	case KindSparseMatrix:
		return e.SMat.Cols()
	}
	return e.Mat.Cols()
}

// Catalog is a durable, concurrency-safe table of named arrays over one
// shared device. See the package comment.
type Catalog struct {
	dir  string
	pool *buffer.Pool // unmetered root view of the shared pool

	mu      sync.RWMutex
	entries map[string]*Entry
	// retired holds superseded or deleted entries whose storage cannot
	// be freed yet: sessions may still hold handles. Close frees them —
	// unless an onRetire hook is installed, in which case the hook's
	// owner (riot.DB) takes over reclamation.
	retired  []*Entry
	onRetire func(*Entry)
	version  int64
	gen      uint64 // checkpoint segment generation counter

	log *wal.Log // nil when WALOff
	// staleWAL marks a WAL (and segments) left by an earlier WAL-mode
	// process that this WALOff catalog replayed on open; the next full
	// checkpoint captures their contents and removes them.
	staleWAL bool
}

// SetOnRetire hands superseded and deleted entries to fn instead of the
// internal until-Close list, so an owner that knows session lifetimes
// (riot.DB) can free retired storage as soon as no session can hold a
// handle. fn is called with the catalog lock held and must not call
// back into the catalog. Install before the catalog is shared.
func (c *Catalog) SetOnRetire(fn func(*Entry)) { c.onRetire = fn }

// FreeStorage drops the entry's resident frames and releases its device
// extent. Only the reclamation owner calls it, and only once no session
// can still hold the entry.
func (e *Entry) FreeStorage() {
	if e.Vec != nil {
		e.Vec.Free()
	}
	if e.Mat != nil {
		e.Mat.Free()
	}
	if e.SMat != nil {
		e.SMat.Free()
	}
	if e.SVec != nil {
		e.SVec.Free()
	}
}

// Open binds dir to the pool's device with the default options
// (checkpoint-only, no WAL) — the seed engine's behavior, byte for
// byte. See OpenWith.
func Open(dir string, pool *buffer.Pool) (*Catalog, error) {
	return OpenWith(dir, pool, Options{})
}

// OpenWith binds dir to the pool's device, loading the catalog file if
// one exists (restoring every named array into fresh extents), creating
// the directory otherwise, and — when a WAL mode is selected — opening
// the log and replaying every record past the checkpoint's durable LSN,
// so acknowledged publishes from a crashed process are visible
// immediately. pool should be the root (unmetered) view of the shared
// pool: catalog storage belongs to the system, not to any session's
// quota.
func OpenWith(dir string, pool *buffer.Pool, opts Options) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	c := &Catalog{dir: dir, pool: pool.Root(), entries: make(map[string]*Entry)}
	path := filepath.Join(dir, FileName)
	checkLSN := uint64(0)
	f, err := os.Open(path)
	switch {
	case os.IsNotExist(err):
		// Fresh directory: nothing to load.
	case err != nil:
		return nil, fmt.Errorf("catalog: %w", err)
	default:
		checkLSN, err = c.load(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("catalog: loading %s: %w", path, err)
		}
	}
	if err := c.openWAL(opts, checkLSN); err != nil {
		return nil, err
	}
	return c, nil
}

// openWAL opens (or, for WALOff over a directory that has one, drains)
// the write-ahead log and replays records past checkLSN.
func (c *Catalog) openWAL(opts Options, checkLSN uint64) error {
	walPath := filepath.Join(c.dir, wal.FileName)
	if opts.WAL == WALOff {
		// A WAL left by an earlier WAL-mode process still holds
		// acknowledged commits; replay it so they are not silently
		// dropped, then leave the file in place until a successful full
		// checkpoint has captured its contents.
		if _, err := os.Stat(walPath); os.IsNotExist(err) {
			return nil
		}
		l, recs, err := wal.Open(walPath, wal.Options{})
		if err != nil {
			return fmt.Errorf("catalog: %w", err)
		}
		if err := c.replay(recs, checkLSN); err != nil {
			l.Close()
			return err
		}
		c.staleWAL = true
		return l.Close()
	}
	mode := wal.ModeAlways
	if opts.WAL == WALInterval {
		mode = wal.ModeInterval
	}
	l, recs, err := wal.Open(walPath, wal.Options{
		Mode:     mode,
		Interval: opts.FlushInterval,
		Injector: opts.WALInjector,
	})
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if err := c.replay(recs, checkLSN); err != nil {
		l.Close()
		return err
	}
	c.log = l
	return nil
}

// replay applies WAL records newer than the checkpoint's durable LSN.
// Records at or below it are duplicates of state the checkpoint already
// holds and are skipped — that is what makes replay idempotent.
func (c *Catalog) replay(recs []wal.Record, checkLSN uint64) error {
	if len(recs) > 0 && recs[0].LSN > checkLSN+1 {
		return fmt.Errorf("catalog: WAL begins at LSN %d but the checkpoint covers only LSN %d: records were lost",
			recs[0].LSN, checkLSN)
	}
	for _, rec := range recs {
		if rec.LSN <= checkLSN {
			continue
		}
		switch rec.Type {
		case wal.RecPublish:
			e, err := c.decodePublish(rec.Payload)
			if err != nil {
				return fmt.Errorf("catalog: replaying WAL record %d: %w", rec.LSN, err)
			}
			e.LSN = rec.LSN
			// No session can hold a handle during open, so a replayed
			// supersede frees the old version on the spot.
			if old, ok := c.entries[e.Name]; ok {
				old.FreeStorage()
			}
			c.entries[e.Name] = e
		case wal.RecDelete:
			name := string(rec.Payload)
			if old, ok := c.entries[name]; ok {
				old.FreeStorage()
				delete(c.entries, name)
			}
		default:
			return fmt.Errorf("catalog: WAL record %d has unknown type %d", rec.LSN, rec.Type)
		}
	}
	return nil
}

// Dir returns the directory the catalog persists into.
func (c *Catalog) Dir() string { return c.dir }

// WALStats returns a snapshot of the write-ahead log's counters and
// whether a WAL is active.
func (c *Catalog) WALStats() (wal.Stats, bool) {
	if c.log == nil {
		return wal.Stats{}, false
	}
	return c.log.Stats(), true
}

// Len returns the number of named entries.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// List returns the catalog's names, sorted.
func (c *Catalog) List() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.entries))
	for n := range c.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the current entry under name. The returned entry is a
// stable snapshot: it stays readable even if another session republishes
// the name afterwards.
func (c *Catalog) Get(name string) (*Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	return e, ok
}

// owner builds the device owner name for one version of a named entry.
// Versions are globally unique, so republished names never collide.
func (c *Catalog) owner(name string, version int64) string {
	return fmt.Sprintf("cat.%s.v%d", name, version)
}

// PutVector publishes a copy of src under name, replacing any previous
// entry (last-writer-wins). The copy lives in catalog-owned storage on
// the same device, so it outlives the session that built src. The new
// entry is returned. With a WAL, the publish is appended to the log and
// — in WALAlways mode — acknowledged only after an fsync'd group flush;
// an error from that wait means the publish is visible to this process
// but its durability is unknown, and callers should treat it as failed.
func (c *Catalog) PutVector(name string, src *array.Vector) (*Entry, error) {
	c.mu.Lock()
	c.version++
	dst, err := array.NewVector(c.pool, c.owner(name, c.version), src.Len())
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	if err := c.copyBlocks(src.BaseBlock(), dst.BaseBlock(), src.Blocks()); err != nil {
		dst.Free()
		c.mu.Unlock()
		return nil, err
	}
	e := &Entry{Name: name, Kind: KindVector, Version: c.version, Vec: dst}
	return c.commit(e)
}

// PutMatrix publishes a copy of src under name (see PutVector). The copy
// keeps src's tile shape and linearization, so the block-level copy is a
// value-level copy.
func (c *Catalog) PutMatrix(name string, src *array.Matrix) (*Entry, error) {
	c.mu.Lock()
	c.version++
	dst, err := array.NewMatrix(c.pool, c.owner(name, c.version), src.Rows(), src.Cols(),
		array.Options{Shape: src.Shape(), Lin: src.Lin()})
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	if err := c.copyBlocks(src.BaseBlock(), dst.BaseBlock(), src.Blocks()); err != nil {
		dst.Free()
		c.mu.Unlock()
		return nil, err
	}
	e := &Entry{Name: name, Kind: KindMatrix, Version: c.version, Mat: dst}
	return c.commit(e)
}

// PutSparseMatrix publishes a copy of src under name (see PutVector).
// The copy keeps src's tile directory — and so its density statistics —
// with its non-empty blocks in one contiguous catalog-owned extent.
func (c *Catalog) PutSparseMatrix(name string, src *sparse.Matrix) (*Entry, error) {
	c.mu.Lock()
	c.version++
	dst, err := sparse.Clone(c.pool, c.owner(name, c.version), src)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	e := &Entry{Name: name, Kind: KindSparseMatrix, Version: c.version, SMat: dst}
	return c.commit(e)
}

// PutSparseVector publishes a copy of src under name (see PutVector).
func (c *Catalog) PutSparseVector(name string, src *sparse.Vector) (*Entry, error) {
	c.mu.Lock()
	c.version++
	dst, err := sparse.CloneVector(c.pool, c.owner(name, c.version), src)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	e := &Entry{Name: name, Kind: KindSparseVector, Version: c.version, SVec: dst}
	return c.commit(e)
}

// commit logs the fully-written entry to the WAL (when one is active),
// installs it in the table, releases the catalog lock, and waits out
// the durability mode. Callers hold c.mu on entry; commit owns the
// unlock so the fsync wait never blocks other publishers — that is what
// lets the flusher batch concurrent sessions into one group commit.
func (c *Catalog) commit(e *Entry) (*Entry, error) {
	var ack func() error
	if c.log != nil {
		payload, err := c.encodePublish(e)
		if err == nil {
			var lsn uint64
			lsn, ack, err = c.log.Append(wal.RecPublish, payload)
			e.LSN = lsn
		}
		if err != nil {
			e.FreeStorage()
			c.mu.Unlock()
			return nil, fmt.Errorf("catalog: logging publish of %q: %w", e.Name, err)
		}
	}
	c.replace(e)
	c.mu.Unlock()
	if ack != nil {
		if err := ack(); err != nil {
			return e, fmt.Errorf("catalog: publish of %q logged but not durable: %w", e.Name, err)
		}
	}
	return e, nil
}

// replace installs e and retires any previous holder of the name.
// Callers hold c.mu.
func (c *Catalog) replace(e *Entry) {
	if old, ok := c.entries[e.Name]; ok {
		c.retire(old)
	}
	c.entries[e.Name] = e
}

// retire routes a superseded entry to the hook or the until-Close list.
// Callers hold c.mu.
func (c *Catalog) retire(old *Entry) {
	if c.onRetire != nil {
		c.onRetire(old)
		return
	}
	c.retired = append(c.retired, old)
}

// Delete removes name from the catalog, retiring its storage, and
// reports whether the name existed. With a WAL the delete is logged
// (and, in WALAlways mode, fsync'd) like a publish, so a deleted name
// stays deleted across a crash.
func (c *Catalog) Delete(name string) (bool, error) {
	c.mu.Lock()
	old, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return false, nil
	}
	var ack func() error
	if c.log != nil {
		var err error
		if _, ack, err = c.log.Append(wal.RecDelete, []byte(name)); err != nil {
			c.mu.Unlock()
			return false, fmt.Errorf("catalog: logging delete of %q: %w", name, err)
		}
	}
	c.retire(old)
	delete(c.entries, name)
	c.mu.Unlock()
	if ack != nil {
		if err := ack(); err != nil {
			return true, fmt.Errorf("catalog: delete of %q logged but not durable: %w", name, err)
		}
	}
	return true, nil
}

// copyBlocks copies n blocks between two same-geometry extents through
// the buffer pool. Going through the pool (rather than the raw device)
// keeps the copy coherent with frames other sessions have resident, and
// charges honest I/O for cold source blocks.
func (c *Catalog) copyBlocks(srcBase, dstBase disk.BlockID, n int) error {
	for k := 0; k < n; k++ {
		sf, err := c.pool.Pin(srcBase + disk.BlockID(k))
		if err != nil {
			return err
		}
		df, err := c.pool.PinNew(dstBase + disk.BlockID(k))
		if err != nil {
			c.pool.Unpin(sf)
			return err
		}
		copy(df.Data, sf.Data)
		df.MarkDirty()
		c.pool.Unpin(df)
		c.pool.Unpin(sf)
	}
	return nil
}

// Checkpoint persists the catalog into the directory atomically (write
// to a temporary file, rename over the old catalog, fsync the directory
// so the rename survives a crash). Without a WAL it serializes every
// entry's payload into one RIOTCAT1 file, exactly as the pre-WAL engine
// did. With a WAL the checkpoint is incremental: only entries published
// since the last checkpoint write their payloads (into a fresh
// immutable segment file); clean entries are referenced where they
// already are, the manifest records the WAL LSN it covers, and the WAL
// is rotated down to empty on success. Payload bytes are captured with
// the pool's uncharged Export — persistence writes to the host
// filesystem, a different device from the simulated disk, and must not
// perturb the I/O counters the paper's experiments measure. Safe to
// call while sessions are running.
func (c *Catalog) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log == nil {
		return c.checkpointFull()
	}
	return c.checkpointIncremental()
}

// checkpointFull writes the legacy single-file RIOTCAT1 checkpoint.
// After it lands, any WAL and segment files left by an earlier WAL-mode
// process are fully captured and removed. Callers hold c.mu.
func (c *Catalog) checkpointFull() error {
	tmp, err := os.CreateTemp(c.dir, FileName+".tmp*")
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriterSize(tmp, 1<<20)
	if err := c.save(w); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", err)
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, FileName)); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if err := wal.SyncDir(c.dir); err != nil {
		return err
	}
	if c.staleWAL {
		// The checkpoint now holds everything the drained WAL did.
		os.Remove(filepath.Join(c.dir, wal.FileName))
		c.removeSegmentsExcept(nil)
		c.staleWAL = false
		return wal.SyncDir(c.dir)
	}
	return nil
}

// checkpointIncremental writes dirty payloads to a new segment file,
// then the RIOTCAT2 manifest, then rotates the WAL. Callers hold c.mu.
func (c *Catalog) checkpointIncremental() error {
	durable := c.log.LastLSN()
	gen := c.gen + 1
	var dirty []*Entry
	for _, e := range c.entries {
		if e.segGen == 0 {
			dirty = append(dirty, e)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].Name < dirty[j].Name })
	if len(dirty) > 0 {
		if err := c.writeSegment(gen, dirty); err != nil {
			return err
		}
	}
	if err := c.writeManifest(durable, gen); err != nil {
		return err
	}
	c.gen = gen
	// Everything the manifest references is durable; drop segment files
	// no entry points at any more, then empty the log.
	referenced := make(map[uint64]bool, len(c.entries))
	for _, e := range c.entries {
		referenced[e.segGen] = true
	}
	c.removeSegmentsExcept(referenced)
	return c.log.Rotate(durable)
}

// writeSegment persists the dirty entries' payloads into the gen
// segment file (tmp, fsync, rename, dir fsync) and stamps their
// segment references. Callers hold c.mu.
func (c *Catalog) writeSegment(gen uint64, dirty []*Entry) error {
	tmp, err := os.CreateTemp(c.dir, segFileName(gen)+".tmp*")
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriterSize(tmp, 1<<20)
	if _, err := w.Write([]byte(SegMagic)); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", err)
	}
	blockElems := c.pool.Device().BlockElems()
	if err := writeU32(w, uint32(blockElems)); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", err)
	}
	off := int64(len(SegMagic) + 4)
	offsets := make([]int64, len(dirty))
	buf := make([]byte, blockElems*8)
	for i, e := range dirty {
		offsets[i] = off
		we, err := describeEntry(e)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("catalog: entry %q: %w", e.Name, err)
		}
		if err := c.writePayload(w, we.ids, buf); err != nil {
			tmp.Close()
			return fmt.Errorf("catalog: entry %q: %w", e.Name, err)
		}
		off += int64(len(we.ids)) * int64(blockElems) * 8
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, segFileName(gen))); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if err := wal.SyncDir(c.dir); err != nil {
		return err
	}
	// Only after the segment is durably in place do the entries point
	// at it; a crash before this line leaves them dirty and the WAL
	// still authoritative.
	for i, e := range dirty {
		e.segGen, e.segOff = gen, offsets[i]
	}
	return nil
}

// writeManifest writes the RIOTCAT2 manifest referencing every entry's
// segment (tmp, fsync, rename, dir fsync). Callers hold c.mu, and every
// entry has a segment reference.
func (c *Catalog) writeManifest(durable, gen uint64) error {
	tmp, err := os.CreateTemp(c.dir, FileName+".tmp*")
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriterSize(tmp, 1<<20)
	werr := func() error {
		if _, err := w.Write([]byte(MagicV2)); err != nil {
			return err
		}
		if err := writeU32(w, uint32(c.pool.Device().BlockElems())); err != nil {
			return err
		}
		if err := writeU64(w, durable); err != nil {
			return err
		}
		if err := writeU64(w, gen); err != nil {
			return err
		}
		if err := writeU32(w, uint32(len(c.entries))); err != nil {
			return err
		}
		names := make([]string, 0, len(c.entries))
		for n := range c.entries {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			e := c.entries[name]
			we, err := describeEntry(e)
			if err != nil {
				return fmt.Errorf("entry %q: %w", name, err)
			}
			if err := writeMeta(w, we, 1); err != nil {
				return fmt.Errorf("entry %q: %w", name, err)
			}
			if err := writeU64(w, e.LSN); err != nil {
				return err
			}
			if err := writeU64(w, e.segGen); err != nil {
				return err
			}
			if err := writeU64(w, uint64(e.segOff)); err != nil {
				return err
			}
		}
		return w.Flush()
	}()
	if werr != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", werr)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, FileName)); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	return wal.SyncDir(c.dir)
}

// removeSegmentsExcept deletes segment files whose generation is not in
// keep (nil keeps nothing). Removal failures are ignored: an orphan
// segment wastes disk, never correctness.
func (c *Catalog) removeSegmentsExcept(keep map[uint64]bool) {
	names, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, de := range names {
		name := de.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		gen, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			continue
		}
		if !keep[gen] {
			os.Remove(filepath.Join(c.dir, name))
		}
	}
}

// Close checkpoints the catalog, closes the WAL, and frees retired
// storage. After Close the catalog must not be used. Entries' storage
// stays on the device: the device dies with the process, the files are
// what persist. If the checkpoint fails, the WAL is still closed
// (flushed, not rotated) so every acknowledged commit remains
// replayable, and the checkpoint error is returned.
func (c *Catalog) Close() error {
	err := c.Checkpoint()
	if c.log != nil {
		if werr := c.log.Close(); err == nil {
			err = werr
		}
	}
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.retired {
		e.FreeStorage()
	}
	c.retired = nil
	return nil
}

// ---- serialization ----

// wireEntry is the serializable description of one entry: its geometry
// plus the device blocks holding its payload, in file order.
type wireEntry struct {
	name       string
	kind       Kind
	shape      array.TileShape
	lin        array.Linearization
	rows, cols int64
	ids        []disk.BlockID
	dir        []int32 // sparse kinds: per-tile (per-chunk) nonzero counts
}

// describeEntry gathers an entry's wire description.
func describeEntry(e *Entry) (wireEntry, error) {
	we := wireEntry{name: e.Name, kind: e.Kind}
	switch e.Kind {
	case KindVector:
		we.rows, we.cols = e.Vec.Len(), 1
		for k := 0; k < e.Vec.Blocks(); k++ {
			we.ids = append(we.ids, e.Vec.BaseBlock()+disk.BlockID(k))
		}
	case KindMatrix:
		we.rows, we.cols = e.Mat.Rows(), e.Mat.Cols()
		we.shape, we.lin = e.Mat.Shape(), e.Mat.Lin()
		for k := 0; k < e.Mat.Blocks(); k++ {
			we.ids = append(we.ids, e.Mat.BaseBlock()+disk.BlockID(k))
		}
	case KindSparseMatrix:
		we.rows, we.cols = e.SMat.Rows(), e.SMat.Cols()
		we.shape, we.lin = e.SMat.Shape(), e.SMat.Lin()
		we.ids = e.SMat.BlockIDs()
		we.dir = e.SMat.TileNNZs()
	case KindSparseVector:
		we.rows, we.cols = e.SVec.Len(), 1
		we.ids = e.SVec.BlockIDs()
		we.dir = e.SVec.ChunkNNZs()
	default:
		return we, fmt.Errorf("unknown entry kind %d", e.Kind)
	}
	return we, nil
}

// writeMeta writes one entry's metadata in the shared wire layout (the
// RIOTCAT1 entry header). flag lands in the byte v1 reserved: 0 means
// the payload follows inline, 1 means a segment reference follows.
func writeMeta(w io.Writer, we wireEntry, flag byte) error {
	if err := writeU32(w, uint32(len(we.name))); err != nil {
		return err
	}
	if _, err := w.Write([]byte(we.name)); err != nil {
		return err
	}
	hdr := []byte{byte(we.kind), byte(we.shape), byte(we.lin), flag}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if err := writeI64(w, we.rows); err != nil {
		return err
	}
	if err := writeI64(w, we.cols); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(we.ids))); err != nil {
		return err
	}
	if we.dir != nil {
		if err := writeU32(w, uint32(len(we.dir))); err != nil {
			return err
		}
		for _, n := range we.dir {
			if err := writeU32(w, uint32(n)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePayload captures the blocks' current contents (resident frames
// included, via the pool's uncharged Export) and writes them to w.
func (c *Catalog) writePayload(w io.Writer, ids []disk.BlockID, buf []byte) error {
	block := make([]float64, c.pool.Device().BlockElems())
	for _, id := range ids {
		if err := c.pool.Export(id, block); err != nil {
			return err
		}
		for i, v := range block {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// encodePublish serializes an entry — metadata plus inline payload, the
// RIOTCAT1 entry layout — into a WAL record body. Callers hold c.mu.
func (c *Catalog) encodePublish(e *Entry) ([]byte, error) {
	we, err := describeEntry(e)
	if err != nil {
		return nil, err
	}
	blockElems := c.pool.Device().BlockElems()
	var b bytes.Buffer
	b.Grow(64 + len(we.ids)*blockElems*8)
	if err := writeMeta(&b, we, 0); err != nil {
		return nil, err
	}
	buf := make([]byte, blockElems*8)
	if err := c.writePayload(&b, we.ids, buf); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// decodePublish restores an entry from a WAL record body (metadata plus
// inline payload) into fresh catalog-owned storage.
func (c *Catalog) decodePublish(payload []byte) (*Entry, error) {
	r := bytes.NewReader(payload)
	m, err := c.readMeta(r)
	if err != nil {
		return nil, err
	}
	e, ids, err := c.allocEntry(m)
	if err != nil {
		return nil, err
	}
	if err := c.importPayload(r, e.Name, ids); err != nil {
		e.FreeStorage()
		return nil, err
	}
	return e, nil
}

// save writes the legacy RIOTCAT1 format: header, then every entry's
// metadata and inline payload, in name order (deterministic layout).
func (c *Catalog) save(w io.Writer) error {
	blockElems := c.pool.Device().BlockElems()
	if _, err := w.Write([]byte(Magic)); err != nil {
		return err
	}
	if err := writeU32(w, uint32(blockElems)); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(c.entries))); err != nil {
		return err
	}
	names := make([]string, 0, len(c.entries))
	for n := range c.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	buf := make([]byte, blockElems*8)
	for _, name := range names {
		we, err := describeEntry(c.entries[name])
		if err != nil {
			return fmt.Errorf("entry %q: %w", name, err)
		}
		if err := writeMeta(w, we, 0); err != nil {
			return fmt.Errorf("entry %q: %w", name, err)
		}
		if err := c.writePayload(w, we.ids, buf); err != nil {
			return fmt.Errorf("entry %q: %w", name, err)
		}
	}
	return nil
}

// load dispatches on the file magic and restores every entry. It
// returns the WAL LSN the file covers (0 for v1 files, which predate
// the WAL).
func (c *Catalog) load(r io.Reader) (uint64, error) {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, fmt.Errorf("reading magic: %w", err)
	}
	switch string(magic) {
	case Magic:
		return 0, c.loadV1(r)
	case MagicV2:
		return c.loadV2(r)
	}
	return 0, fmt.Errorf("bad magic %q (not a catalog file, or an unsupported version)", magic)
}

// checkBlockElems validates a file's block size against the device.
func (c *Catalog) checkBlockElems(r io.Reader) error {
	blockElems := c.pool.Device().BlockElems()
	fileB, err := readU32(r)
	if err != nil {
		return err
	}
	if int(fileB) != blockElems {
		return fmt.Errorf("catalog written with block size %d, device uses %d", fileB, blockElems)
	}
	return nil
}

// loadV1 restores the legacy inline-payload format.
func (c *Catalog) loadV1(r io.Reader) error {
	if err := c.checkBlockElems(r); err != nil {
		return err
	}
	count, err := readU32(r)
	if err != nil {
		return err
	}
	for i := uint32(0); i < count; i++ {
		if err := c.loadEntryV1(r); err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
	}
	return nil
}

// loadEntryV1 restores one inline entry.
func (c *Catalog) loadEntryV1(r io.Reader) error {
	m, err := c.readMeta(r)
	if err != nil {
		return err
	}
	e, ids, err := c.allocEntry(m)
	if err != nil {
		return err
	}
	if err := c.importPayload(r, e.Name, ids); err != nil {
		e.FreeStorage()
		return err
	}
	c.entries[e.Name] = e
	return nil
}

// loadV2 restores the manifest format: per-entry metadata with segment
// references, payloads read from the referenced segment files. It
// returns the manifest's durable LSN.
func (c *Catalog) loadV2(r io.Reader) (uint64, error) {
	if err := c.checkBlockElems(r); err != nil {
		return 0, err
	}
	durable, err := readU64(r)
	if err != nil {
		return 0, err
	}
	gen, err := readU64(r)
	if err != nil {
		return 0, err
	}
	count, err := readU32(r)
	if err != nil {
		return 0, err
	}
	segs := make(map[uint64]*os.File)
	defer func() {
		for _, f := range segs {
			f.Close()
		}
	}()
	for i := uint32(0); i < count; i++ {
		if err := c.loadEntryV2(r, segs); err != nil {
			return 0, fmt.Errorf("entry %d: %w", i, err)
		}
	}
	c.gen = gen
	return durable, nil
}

// loadEntryV2 restores one manifest entry from its segment.
func (c *Catalog) loadEntryV2(r io.Reader, segs map[uint64]*os.File) error {
	m, err := c.readMeta(r)
	if err != nil {
		return err
	}
	if m.flag != 1 {
		return fmt.Errorf("entry %q: manifest entry without a segment reference", m.name)
	}
	lsn, err := readU64(r)
	if err != nil {
		return err
	}
	segGen, err := readU64(r)
	if err != nil {
		return err
	}
	segOff, err := readU64(r)
	if err != nil {
		return err
	}
	sf := segs[segGen]
	if sf == nil {
		sf, err = c.openSegment(segGen)
		if err != nil {
			return fmt.Errorf("entry %q: %w", m.name, err)
		}
		segs[segGen] = sf
	}
	e, ids, err := c.allocEntry(m)
	if err != nil {
		return err
	}
	blockBytes := c.pool.Device().BlockElems() * 8
	sr := io.NewSectionReader(sf, int64(segOff), int64(len(ids))*int64(blockBytes))
	if err := c.importPayload(sr, e.Name, ids); err != nil {
		e.FreeStorage()
		return err
	}
	e.LSN = lsn
	e.segGen, e.segOff = segGen, int64(segOff)
	c.entries[e.Name] = e
	return nil
}

// openSegment opens and validates one payload segment file.
func (c *Catalog) openSegment(gen uint64) (*os.File, error) {
	path := filepath.Join(c.dir, segFileName(gen))
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening segment %d: %w", gen, err)
	}
	hdr := make([]byte, len(SegMagic))
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("segment %d: reading magic: %w", gen, err)
	}
	if string(hdr) != SegMagic {
		f.Close()
		return nil, fmt.Errorf("segment %d: bad magic %q", gen, hdr)
	}
	if err := c.checkBlockElems(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("segment %d: %w", gen, err)
	}
	return f, nil
}

// maxNameLen bounds entry names so a corrupt length field cannot drive a
// giant allocation.
const maxNameLen = 1 << 16

// maxEntryBlocks bounds one entry's block and directory counts, for the
// same reason.
const maxEntryBlocks = 1 << 24

// entryMeta is one parsed entry header, validated but not yet
// allocated.
type entryMeta struct {
	name       string
	kind       Kind
	shape      array.TileShape
	lin        array.Linearization
	flag       byte
	rows, cols int64
	nblocks    uint32
	dir        []int32
}

// readMeta parses and sanity-checks one entry header in the shared wire
// layout. Every check runs before any geometry-sized allocation, so a
// corrupt header cannot drive one.
func (c *Catalog) readMeta(r io.Reader) (entryMeta, error) {
	var m entryMeta
	nameLen, err := readU32(r)
	if err != nil {
		return m, err
	}
	if nameLen == 0 || nameLen > maxNameLen {
		return m, fmt.Errorf("implausible name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBytes); err != nil {
		return m, err
	}
	m.name = string(nameBytes)
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return m, err
	}
	m.kind = Kind(hdr[0])
	m.shape = array.TileShape(hdr[1])
	m.lin = array.Linearization(hdr[2])
	m.flag = hdr[3]
	if m.rows, err = readI64(r); err != nil {
		return m, err
	}
	if m.cols, err = readI64(r); err != nil {
		return m, err
	}
	if m.nblocks, err = readU32(r); err != nil {
		return m, err
	}
	blockElems := int64(c.pool.Device().BlockElems())
	if m.rows < 0 || m.cols < 0 || m.nblocks > maxEntryBlocks {
		return m, fmt.Errorf("implausible geometry %dx%d in %d blocks", m.rows, m.cols, m.nblocks)
	}
	sparseKind := m.kind == KindSparseMatrix || m.kind == KindSparseVector
	// Dense kinds must hold rows×cols elements in their blocks; sparse
	// kinds legitimately store fewer (that is the point), and their
	// directory is validated by the sparse allocator instead.
	// float64 comparison: corrupt 64-bit dimensions must not overflow
	// the check that is there to reject them.
	if !sparseKind &&
		float64(m.rows)*math.Max(float64(m.cols), 1) > float64(m.nblocks)*float64(blockElems) {
		return m, fmt.Errorf("implausible geometry %dx%d in %d blocks", m.rows, m.cols, m.nblocks)
	}
	if sparseKind {
		dirLen, err := readU32(r)
		if err != nil {
			return m, err
		}
		// The sparse twin of the dense plausibility check above: the
		// directory length must match the grid the dimensions imply,
		// and the payload cannot exceed the directory.
		want, gerr := sparseGridSize(m.kind, m.rows, m.cols, m.shape, blockElems)
		if gerr != nil {
			return m, gerr
		}
		if int64(dirLen) != want || want > maxEntryBlocks || int64(m.nblocks) > want {
			return m, fmt.Errorf("implausible sparse geometry %dx%d: directory %d, %d blocks, grid wants %d",
				m.rows, m.cols, dirLen, m.nblocks, want)
		}
		m.dir = make([]int32, dirLen)
		for i := range m.dir {
			n, err := readU32(r)
			if err != nil {
				return m, err
			}
			m.dir[i] = int32(n)
		}
	}
	return m, nil
}

// allocEntry allocates fresh catalog-owned device storage matching the
// parsed metadata and returns the entry plus its block IDs in file
// order.
func (c *Catalog) allocEntry(m entryMeta) (*Entry, []disk.BlockID, error) {
	c.version++
	e := &Entry{Name: m.name, Kind: m.kind, Version: c.version}
	var ids []disk.BlockID
	switch m.kind {
	case KindVector:
		v, err := array.NewVector(c.pool, c.owner(m.name, c.version), m.rows)
		if err != nil {
			return nil, nil, err
		}
		e.Vec = v
		for k := 0; k < v.Blocks(); k++ {
			ids = append(ids, v.BaseBlock()+disk.BlockID(k))
		}
	case KindMatrix:
		mat, err := array.NewMatrix(c.pool, c.owner(m.name, c.version), m.rows, m.cols,
			array.Options{Shape: m.shape, Lin: m.lin})
		if err != nil {
			return nil, nil, err
		}
		e.Mat = mat
		for k := 0; k < mat.Blocks(); k++ {
			ids = append(ids, mat.BaseBlock()+disk.BlockID(k))
		}
	case KindSparseMatrix:
		sm, err := sparse.Alloc(c.pool, c.owner(m.name, c.version), m.rows, m.cols,
			array.Options{Shape: m.shape, Lin: m.lin}, m.dir)
		if err != nil {
			return nil, nil, err
		}
		e.SMat, ids = sm, sm.BlockIDs()
	case KindSparseVector:
		sv, err := sparse.AllocVector(c.pool, c.owner(m.name, c.version), m.rows, m.dir)
		if err != nil {
			return nil, nil, err
		}
		e.SVec, ids = sv, sv.BlockIDs()
	default:
		return nil, nil, fmt.Errorf("unknown entry kind %d", m.kind)
	}
	if int(m.nblocks) != len(ids) {
		e.FreeStorage()
		return nil, nil, fmt.Errorf("entry %q: %d blocks in file, geometry wants %d", m.name, m.nblocks, len(ids))
	}
	return e, ids, nil
}

// importPayload reads len(ids) block payloads from r into the device
// (uncharged: restored state is the starting condition of a
// measurement, not part of it).
func (c *Catalog) importPayload(r io.Reader, name string, ids []disk.BlockID) error {
	blockElems := c.pool.Device().BlockElems()
	buf := make([]byte, blockElems*8)
	block := make([]float64, blockElems)
	dev := c.pool.Device()
	for _, id := range ids {
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("entry %q: truncated payload: %w", name, err)
		}
		for i := range block {
			block[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		if err := dev.Import(id, block); err != nil {
			return err
		}
	}
	return nil
}

// sparseGridSize returns the tile (or chunk) count a sparse entry's
// dimensions imply — the length its directory must have. Pure scalar
// arithmetic: it allocates nothing, so it is safe to run on corrupt
// headers.
func sparseGridSize(kind Kind, rows, cols int64, shape array.TileShape, blockElems int64) (int64, error) {
	if kind == KindSparseVector {
		return (rows + blockElems - 1) / blockElems, nil
	}
	tr, tc, err := array.TileDimsFor(int(blockElems), shape)
	if err != nil {
		return 0, err
	}
	gr := (rows + int64(tr) - 1) / int64(tr)
	gc := (cols + int64(tc) - 1) / int64(tc)
	// Bound each side before multiplying so corrupt dimensions cannot
	// overflow the product into a small, plausible-looking value.
	if gr > maxEntryBlocks || gc > maxEntryBlocks {
		return 0, fmt.Errorf("implausible sparse grid %d×%d", gr, gc)
	}
	return gr * gc, nil
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeI64(w io.Writer, v int64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func readI64(r io.Reader) (int64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b[:])), nil
}
