// Package catalog implements RIOT's durable catalog of named arrays:
// the layer that moves named numerical objects out of a process's
// transient heap and into database-grade storage, which is the paper's
// core argument applied to object lifetime rather than object access.
//
// A Catalog binds a host-filesystem directory to the simulated device
// behind a buffer pool. Named arrays published with PutVector/PutMatrix
// are copied into catalog-owned extents on the device (so they survive
// the publishing session), and Checkpoint serializes every entry —
// metadata page plus raw tile payloads — into the directory with an
// atomic write-then-rename. Opening the same directory later replays
// the file into a fresh device, so a new process sees the same named
// arrays with identical values.
//
// Publishing is last-writer-wins: a Put under the catalog lock replaces
// the table entry in one step, and readers that already hold the old
// version keep a valid handle (superseded storage is retired, not
// freed, until Close). All methods are safe for concurrent use by many
// sessions.
//
// # On-disk format
//
// One file, catalog.riot, little-endian:
//
//	[8]byte  magic "RIOTCAT1"
//	uint32   block size in float64 elements (must match the device)
//	uint32   entry count
//	entries:
//	  uint32 name length, name bytes
//	  uint8  kind (0 vector, 1 matrix, 2 sparse matrix, 3 sparse vector)
//	  uint8  tile shape, uint8 linearization, uint8 reserved
//	  int64  rows, int64 cols
//	  uint32 block count
//	  sparse kinds only: uint32 directory length, then that many
//	    uint32 per-tile (per-chunk) nonzero counts — the density
//	    statistics the planner reads, persisted with the data
//	  block payloads: count × blockElems × 8 bytes (float64 bits);
//	    sparse kinds store only their non-empty tiles' payloads, in
//	    row-major tile order
//
// The format is versioned by its magic; a file whose magic or block
// size does not match is rejected rather than guessed at. Sparse
// entries restore with their directories intact, so an all-zero tile
// still costs no block after a restart.
package catalog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
	"riot/internal/sparse"
)

// Magic identifies a catalog file (and its format version).
const Magic = "RIOTCAT1"

// FileName is the catalog file inside the directory.
const FileName = "catalog.riot"

// Kind distinguishes stored vectors from stored matrices.
type Kind uint8

// Entry kinds.
const (
	KindVector       Kind = 0
	KindMatrix       Kind = 1
	KindSparseMatrix Kind = 2
	KindSparseVector Kind = 3
)

// Entry is one named array in the catalog. Exactly one of Vec, Mat,
// SMat, and SVec is non-nil, per Kind. Entries are immutable once
// published: a new Put under the same name creates a new Entry rather
// than mutating this one, so a handle obtained from Get stays valid
// (last-writer-wins for future readers, stable snapshots for current
// ones).
type Entry struct {
	Name    string
	Kind    Kind
	Version int64
	Vec     *array.Vector
	Mat     *array.Matrix
	SMat    *sparse.Matrix
	SVec    *sparse.Vector
}

// Rows returns the row count (the length for vectors).
func (e *Entry) Rows() int64 {
	switch e.Kind {
	case KindVector:
		return e.Vec.Len()
	case KindSparseVector:
		return e.SVec.Len()
	case KindSparseMatrix:
		return e.SMat.Rows()
	}
	return e.Mat.Rows()
}

// Cols returns the column count (1 for vectors).
func (e *Entry) Cols() int64 {
	switch e.Kind {
	case KindVector, KindSparseVector:
		return 1
	case KindSparseMatrix:
		return e.SMat.Cols()
	}
	return e.Mat.Cols()
}

// Catalog is a durable, concurrency-safe table of named arrays over one
// shared device. See the package comment.
type Catalog struct {
	dir  string
	pool *buffer.Pool // unmetered root view of the shared pool

	mu      sync.RWMutex
	entries map[string]*Entry
	// retired holds superseded or deleted entries whose storage cannot
	// be freed yet: sessions may still hold handles. Close frees them —
	// unless an onRetire hook is installed, in which case the hook's
	// owner (riot.DB) takes over reclamation.
	retired  []*Entry
	onRetire func(*Entry)
	version  int64
}

// SetOnRetire hands superseded and deleted entries to fn instead of the
// internal until-Close list, so an owner that knows session lifetimes
// (riot.DB) can free retired storage as soon as no session can hold a
// handle. fn is called with the catalog lock held and must not call
// back into the catalog. Install before the catalog is shared.
func (c *Catalog) SetOnRetire(fn func(*Entry)) { c.onRetire = fn }

// FreeStorage drops the entry's resident frames and releases its device
// extent. Only the reclamation owner calls it, and only once no session
// can still hold the entry.
func (e *Entry) FreeStorage() {
	if e.Vec != nil {
		e.Vec.Free()
	}
	if e.Mat != nil {
		e.Mat.Free()
	}
	if e.SMat != nil {
		e.SMat.Free()
	}
	if e.SVec != nil {
		e.SVec.Free()
	}
}

// Open binds dir to the pool's device, loading the catalog file if one
// exists (restoring every named array into fresh extents) and creating
// the directory otherwise. pool should be the root (unmetered) view of
// the shared pool: catalog storage belongs to the system, not to any
// session's quota.
func Open(dir string, pool *buffer.Pool) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	c := &Catalog{dir: dir, pool: pool.Root(), entries: make(map[string]*Entry)}
	path := filepath.Join(dir, FileName)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()
	if err := c.load(bufio.NewReaderSize(f, 1<<20)); err != nil {
		return nil, fmt.Errorf("catalog: loading %s: %w", path, err)
	}
	return c, nil
}

// Dir returns the directory the catalog persists into.
func (c *Catalog) Dir() string { return c.dir }

// Len returns the number of named entries.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// List returns the catalog's names, sorted.
func (c *Catalog) List() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.entries))
	for n := range c.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the current entry under name. The returned entry is a
// stable snapshot: it stays readable even if another session republishes
// the name afterwards.
func (c *Catalog) Get(name string) (*Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	return e, ok
}

// owner builds the device owner name for one version of a named entry.
// Versions are globally unique, so republished names never collide.
func (c *Catalog) owner(name string, version int64) string {
	return fmt.Sprintf("cat.%s.v%d", name, version)
}

// PutVector publishes a copy of src under name, replacing any previous
// entry (last-writer-wins). The copy lives in catalog-owned storage on
// the same device, so it outlives the session that built src. The new
// entry is returned.
func (c *Catalog) PutVector(name string, src *array.Vector) (*Entry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version++
	dst, err := array.NewVector(c.pool, c.owner(name, c.version), src.Len())
	if err != nil {
		return nil, err
	}
	if err := c.copyBlocks(src.BaseBlock(), dst.BaseBlock(), src.Blocks()); err != nil {
		dst.Free()
		return nil, err
	}
	e := &Entry{Name: name, Kind: KindVector, Version: c.version, Vec: dst}
	c.replace(e)
	return e, nil
}

// PutMatrix publishes a copy of src under name (see PutVector). The copy
// keeps src's tile shape and linearization, so the block-level copy is a
// value-level copy.
func (c *Catalog) PutMatrix(name string, src *array.Matrix) (*Entry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version++
	dst, err := array.NewMatrix(c.pool, c.owner(name, c.version), src.Rows(), src.Cols(),
		array.Options{Shape: src.Shape(), Lin: src.Lin()})
	if err != nil {
		return nil, err
	}
	if err := c.copyBlocks(src.BaseBlock(), dst.BaseBlock(), src.Blocks()); err != nil {
		dst.Free()
		return nil, err
	}
	e := &Entry{Name: name, Kind: KindMatrix, Version: c.version, Mat: dst}
	c.replace(e)
	return e, nil
}

// PutSparseMatrix publishes a copy of src under name (see PutVector).
// The copy keeps src's tile directory — and so its density statistics —
// with its non-empty blocks in one contiguous catalog-owned extent.
func (c *Catalog) PutSparseMatrix(name string, src *sparse.Matrix) (*Entry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version++
	dst, err := sparse.Clone(c.pool, c.owner(name, c.version), src)
	if err != nil {
		return nil, err
	}
	e := &Entry{Name: name, Kind: KindSparseMatrix, Version: c.version, SMat: dst}
	c.replace(e)
	return e, nil
}

// PutSparseVector publishes a copy of src under name (see PutVector).
func (c *Catalog) PutSparseVector(name string, src *sparse.Vector) (*Entry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version++
	dst, err := sparse.CloneVector(c.pool, c.owner(name, c.version), src)
	if err != nil {
		return nil, err
	}
	e := &Entry{Name: name, Kind: KindSparseVector, Version: c.version, SVec: dst}
	c.replace(e)
	return e, nil
}

// replace installs e and retires any previous holder of the name.
// Callers hold c.mu.
func (c *Catalog) replace(e *Entry) {
	if old, ok := c.entries[e.Name]; ok {
		c.retire(old)
	}
	c.entries[e.Name] = e
}

// retire routes a superseded entry to the hook or the until-Close list.
// Callers hold c.mu.
func (c *Catalog) retire(old *Entry) {
	if c.onRetire != nil {
		c.onRetire(old)
		return
	}
	c.retired = append(c.retired, old)
}

// Delete removes name from the catalog, retiring its storage. It
// reports whether the name existed.
func (c *Catalog) Delete(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	old, ok := c.entries[name]
	if ok {
		c.retire(old)
		delete(c.entries, name)
	}
	return ok
}

// copyBlocks copies n blocks between two same-geometry extents through
// the buffer pool. Going through the pool (rather than the raw device)
// keeps the copy coherent with frames other sessions have resident, and
// charges honest I/O for cold source blocks.
func (c *Catalog) copyBlocks(srcBase, dstBase disk.BlockID, n int) error {
	for k := 0; k < n; k++ {
		sf, err := c.pool.Pin(srcBase + disk.BlockID(k))
		if err != nil {
			return err
		}
		df, err := c.pool.PinNew(dstBase + disk.BlockID(k))
		if err != nil {
			c.pool.Unpin(sf)
			return err
		}
		copy(df.Data, sf.Data)
		df.MarkDirty()
		c.pool.Unpin(df)
		c.pool.Unpin(sf)
	}
	return nil
}

// Checkpoint serializes the catalog — metadata and every entry's block
// payloads — into the directory, atomically (write to a temporary file,
// then rename over the old catalog). The writes go to the host
// filesystem, a different device from the simulated disk, so they do not
// perturb the I/O counters; current block contents are read through the
// buffer pool, so dirty frames are captured without a pool-wide flush.
func (c *Catalog) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	tmp, err := os.CreateTemp(c.dir, FileName+".tmp*")
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriterSize(tmp, 1<<20)
	if err := c.save(w); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", err)
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, FileName)); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	return nil
}

// Close checkpoints the catalog and frees retired storage. After Close
// the catalog must not be used. Entries' storage stays on the device:
// the device dies with the process, the file is what persists.
func (c *Catalog) Close() error {
	if err := c.Checkpoint(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.retired {
		e.FreeStorage()
	}
	c.retired = nil
	return nil
}

// ---- serialization ----

func (c *Catalog) save(w io.Writer) error {
	blockElems := c.pool.Device().BlockElems()
	if _, err := w.Write([]byte(Magic)); err != nil {
		return err
	}
	if err := writeU32(w, uint32(blockElems)); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(c.entries))); err != nil {
		return err
	}
	// Deterministic file layout: entries in name order.
	names := make([]string, 0, len(c.entries))
	for n := range c.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	buf := make([]byte, blockElems*8)
	for _, name := range names {
		if err := c.saveEntry(w, c.entries[name], buf); err != nil {
			return fmt.Errorf("entry %q: %w", name, err)
		}
	}
	return nil
}

func (c *Catalog) saveEntry(w io.Writer, e *Entry, buf []byte) error {
	if err := writeU32(w, uint32(len(e.Name))); err != nil {
		return err
	}
	if _, err := w.Write([]byte(e.Name)); err != nil {
		return err
	}
	var ids []disk.BlockID
	var dir []int32 // sparse kinds: per-tile/per-chunk nonzero counts
	var rows, cols int64
	var shape array.TileShape
	var lin array.Linearization
	switch e.Kind {
	case KindVector:
		rows, cols = e.Vec.Len(), 1
		for k := 0; k < e.Vec.Blocks(); k++ {
			ids = append(ids, e.Vec.BaseBlock()+disk.BlockID(k))
		}
	case KindMatrix:
		rows, cols = e.Mat.Rows(), e.Mat.Cols()
		shape, lin = e.Mat.Shape(), e.Mat.Lin()
		for k := 0; k < e.Mat.Blocks(); k++ {
			ids = append(ids, e.Mat.BaseBlock()+disk.BlockID(k))
		}
	case KindSparseMatrix:
		rows, cols = e.SMat.Rows(), e.SMat.Cols()
		shape, lin = e.SMat.Shape(), e.SMat.Lin()
		ids = e.SMat.BlockIDs()
		dir = e.SMat.TileNNZs()
	case KindSparseVector:
		rows, cols = e.SVec.Len(), 1
		ids = e.SVec.BlockIDs()
		dir = e.SVec.ChunkNNZs()
	default:
		return fmt.Errorf("unknown entry kind %d", e.Kind)
	}
	hdr := []byte{byte(e.Kind), byte(shape), byte(lin), 0}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if err := writeI64(w, rows); err != nil {
		return err
	}
	if err := writeI64(w, cols); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(ids))); err != nil {
		return err
	}
	if dir != nil {
		if err := writeU32(w, uint32(len(dir))); err != nil {
			return err
		}
		for _, n := range dir {
			if err := writeU32(w, uint32(n)); err != nil {
				return err
			}
		}
	}
	for _, id := range ids {
		f, err := c.pool.Pin(id)
		if err != nil {
			return err
		}
		for i, v := range f.Data {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		c.pool.Unpin(f)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func (c *Catalog) load(r io.Reader) error {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("reading magic: %w", err)
	}
	if string(magic) != Magic {
		return fmt.Errorf("bad magic %q (not a catalog file, or an unsupported version)", magic)
	}
	blockElems := c.pool.Device().BlockElems()
	fileB, err := readU32(r)
	if err != nil {
		return err
	}
	if int(fileB) != blockElems {
		return fmt.Errorf("catalog written with block size %d, device uses %d", fileB, blockElems)
	}
	count, err := readU32(r)
	if err != nil {
		return err
	}
	buf := make([]byte, blockElems*8)
	block := make([]float64, blockElems)
	for i := uint32(0); i < count; i++ {
		if err := c.loadEntry(r, buf, block); err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
	}
	return nil
}

// maxNameLen bounds entry names so a corrupt length field cannot drive a
// giant allocation.
const maxNameLen = 1 << 16

// maxEntryBlocks bounds one entry's block and directory counts, for the
// same reason.
const maxEntryBlocks = 1 << 24

func (c *Catalog) loadEntry(r io.Reader, buf []byte, block []float64) error {
	nameLen, err := readU32(r)
	if err != nil {
		return err
	}
	if nameLen == 0 || nameLen > maxNameLen {
		return fmt.Errorf("implausible name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBytes); err != nil {
		return err
	}
	name := string(nameBytes)
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return err
	}
	kind := Kind(hdr[0])
	shape := array.TileShape(hdr[1])
	lin := array.Linearization(hdr[2])
	rows, err := readI64(r)
	if err != nil {
		return err
	}
	cols, err := readI64(r)
	if err != nil {
		return err
	}
	nblocks, err := readU32(r)
	if err != nil {
		return err
	}
	// Sanity-check before allocating geometry, so a corrupt header
	// cannot drive a huge allocation.
	blockElems := int64(c.pool.Device().BlockElems())
	if rows < 0 || cols < 0 || nblocks > maxEntryBlocks {
		return fmt.Errorf("implausible geometry %dx%d in %d blocks", rows, cols, nblocks)
	}
	sparseKind := kind == KindSparseMatrix || kind == KindSparseVector
	// Dense kinds must hold rows×cols elements in their blocks; sparse
	// kinds legitimately store fewer (that is the point), and their
	// directory is validated by the sparse allocator instead.
	// float64 comparison: corrupt 64-bit dimensions must not overflow
	// the check that is there to reject them.
	if !sparseKind &&
		float64(rows)*math.Max(float64(cols), 1) > float64(nblocks)*float64(blockElems) {
		return fmt.Errorf("implausible geometry %dx%d in %d blocks", rows, cols, nblocks)
	}
	var dir []int32
	if sparseKind {
		dirLen, err := readU32(r)
		if err != nil {
			return err
		}
		// The sparse twin of the dense plausibility check above: the
		// directory length must match the grid the dimensions imply
		// (computed in scalar arithmetic, BEFORE any geometry-sized
		// allocation, so corrupt dimensions cannot drive one), and the
		// payload cannot exceed the directory.
		want, gerr := sparseGridSize(kind, rows, cols, shape, blockElems)
		if gerr != nil {
			return gerr
		}
		if int64(dirLen) != want || want > maxEntryBlocks || int64(nblocks) > want {
			return fmt.Errorf("implausible sparse geometry %dx%d: directory %d, %d blocks, grid wants %d",
				rows, cols, dirLen, nblocks, want)
		}
		dir = make([]int32, dirLen)
		for i := range dir {
			n, err := readU32(r)
			if err != nil {
				return err
			}
			dir[i] = int32(n)
		}
	}
	c.version++
	e := &Entry{Name: name, Kind: kind, Version: c.version}
	var ids []disk.BlockID
	switch kind {
	case KindVector:
		v, err := array.NewVector(c.pool, c.owner(name, c.version), rows)
		if err != nil {
			return err
		}
		e.Vec = v
		for k := 0; k < v.Blocks(); k++ {
			ids = append(ids, v.BaseBlock()+disk.BlockID(k))
		}
	case KindMatrix:
		m, err := array.NewMatrix(c.pool, c.owner(name, c.version), rows, cols,
			array.Options{Shape: shape, Lin: lin})
		if err != nil {
			return err
		}
		e.Mat = m
		for k := 0; k < m.Blocks(); k++ {
			ids = append(ids, m.BaseBlock()+disk.BlockID(k))
		}
	case KindSparseMatrix:
		m, err := sparse.Alloc(c.pool, c.owner(name, c.version), rows, cols,
			array.Options{Shape: shape, Lin: lin}, dir)
		if err != nil {
			return err
		}
		e.SMat, ids = m, m.BlockIDs()
	case KindSparseVector:
		v, err := sparse.AllocVector(c.pool, c.owner(name, c.version), rows, dir)
		if err != nil {
			return err
		}
		e.SVec, ids = v, v.BlockIDs()
	default:
		return fmt.Errorf("unknown entry kind %d", kind)
	}
	if int(nblocks) != len(ids) {
		return fmt.Errorf("entry %q: %d blocks in file, geometry wants %d", name, nblocks, len(ids))
	}
	dev := c.pool.Device()
	for _, id := range ids {
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("entry %q: truncated payload: %w", name, err)
		}
		for i := range block {
			block[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		if err := dev.Import(id, block); err != nil {
			return err
		}
	}
	c.entries[name] = e
	return nil
}

// sparseGridSize returns the tile (or chunk) count a sparse entry's
// dimensions imply — the length its directory must have. Pure scalar
// arithmetic: it allocates nothing, so it is safe to run on corrupt
// headers.
func sparseGridSize(kind Kind, rows, cols int64, shape array.TileShape, blockElems int64) (int64, error) {
	if kind == KindSparseVector {
		return (rows + blockElems - 1) / blockElems, nil
	}
	tr, tc, err := array.TileDimsFor(int(blockElems), shape)
	if err != nil {
		return 0, err
	}
	gr := (rows + int64(tr) - 1) / int64(tr)
	gc := (cols + int64(tc) - 1) / int64(tc)
	// Bound each side before multiplying so corrupt dimensions cannot
	// overflow the product into a small, plausible-looking value.
	if gr > maxEntryBlocks || gc > maxEntryBlocks {
		return 0, fmt.Errorf("implausible sparse grid %d×%d", gr, gc)
	}
	return gr * gc, nil
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeI64(w io.Writer, v int64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readI64(r io.Reader) (int64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b[:])), nil
}
