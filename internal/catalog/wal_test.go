package catalog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"riot/internal/wal"
)

// openWAL opens a catalog in WALAlways mode over a fresh pool.
func openWAL(t *testing.T, dir string, blockElems, frames int) *Catalog {
	t.Helper()
	cat, err := OpenWith(dir, newPool(t, blockElems, frames), Options{WAL: WALAlways})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestWALSurvivesWithoutCheckpoint is the point of the log: publishes
// and deletes acknowledged in one "process" are visible after a crash —
// the catalog is abandoned without Checkpoint or Close — because Open
// replays the WAL.
func TestWALSurvivesWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	const B = 64
	cat := openWAL(t, dir, B, 64)
	pool := cat.pool
	v := fillVector(t, pool, "v", 300, func(i int64) float64 { return float64(2 * i) })
	if _, err := cat.PutVector("x", v); err != nil {
		t.Fatal(err)
	}
	m := fillMatrix(t, pool, "m", 20, 30, func(i, j int64) float64 { return float64(i - j) })
	if _, err := cat.PutMatrix("mat", m); err != nil {
		t.Fatal(err)
	}
	doomed := fillVector(t, pool, "d", 10, func(i int64) float64 { return 1 })
	if _, err := cat.PutVector("doomed", doomed); err != nil {
		t.Fatal(err)
	}
	if ok, err := cat.Delete("doomed"); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	// No Checkpoint, no Close: simulate a crash by walking away.

	cat2 := openWAL(t, dir, B, 64)
	defer cat2.Close()
	if got := cat2.List(); len(got) != 2 || got[0] != "mat" || got[1] != "x" {
		t.Fatalf("List after replay = %v, want [mat x]", got)
	}
	e, _ := cat2.Get("x")
	for _, i := range []int64{0, 63, 64, 299} {
		if got, _ := e.Vec.At(i); got != float64(2*i) {
			t.Fatalf("replayed x[%d] = %g, want %g", i, got, float64(2*i))
		}
	}
	if e.LSN == 0 {
		t.Fatal("replayed entry has no LSN stamp")
	}
	me, _ := cat2.Get("mat")
	if got, _ := me.Mat.At(7, 11); got != -4 {
		t.Fatalf("replayed mat[7,11] = %g, want -4", got)
	}
	st, on := cat2.WALStats()
	if !on || st.Replayed != 4 {
		t.Fatalf("WALStats = %+v, %v; want 4 replayed records", st, on)
	}
}

// TestWALReplayIdempotent: records covered by the checkpoint are not
// re-applied on open; records after it are.
func TestWALReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	cat := openWAL(t, dir, 64, 64)
	a := fillVector(t, cat.pool, "a", 100, func(i int64) float64 { return float64(i) })
	if _, err := cat.PutVector("a", a); err != nil {
		t.Fatal(err)
	}
	if err := cat.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	b := fillVector(t, cat.pool, "b", 100, func(i int64) float64 { return float64(i + 7) })
	if _, err := cat.PutVector("b", b); err != nil {
		t.Fatal(err)
	}
	// Crash after the checkpoint: only b's record is in the WAL (the
	// checkpoint rotated a's away), and replay must apply exactly it.
	cat2 := openWAL(t, dir, 64, 64)
	defer cat2.Close()
	if got := cat2.List(); len(got) != 2 {
		t.Fatalf("List = %v", got)
	}
	st, _ := cat2.WALStats()
	if st.Replayed != 1 {
		t.Fatalf("replayed %d records, want 1 (checkpointed records must not replay)", st.Replayed)
	}
	ea, _ := cat2.Get("a")
	eb, _ := cat2.Get("b")
	if got, _ := ea.Vec.At(50); got != 50 {
		t.Fatalf("a[50] = %g", got)
	}
	if got, _ := eb.Vec.At(50); got != 57 {
		t.Fatalf("b[50] = %g", got)
	}
}

// TestIncrementalCheckpoint: a second checkpoint only serializes entries
// published since the first; clean entries are referenced in their old
// segment, and segments no entry references are garbage-collected.
func TestIncrementalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cat := openWAL(t, dir, 64, 256)
	big := fillVector(t, cat.pool, "big", 5000, func(i int64) float64 { return float64(i) })
	if _, err := cat.PutVector("big", big); err != nil {
		t.Fatal(err)
	}
	if err := cat.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seg1 := filepath.Join(dir, segFileName(1))
	fi1, err := os.Stat(seg1)
	if err != nil {
		t.Fatalf("first checkpoint wrote no segment: %v", err)
	}
	small := fillVector(t, cat.pool, "small", 10, func(i int64) float64 { return 3 })
	if _, err := cat.PutVector("small", small); err != nil {
		t.Fatal(err)
	}
	if err := cat.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fi2, err := os.Stat(filepath.Join(dir, segFileName(2)))
	if err != nil {
		t.Fatalf("second checkpoint wrote no segment: %v", err)
	}
	if fi2.Size() >= fi1.Size() {
		t.Fatalf("incremental segment (%d bytes) not smaller than full one (%d): clean entries were rewritten",
			fi2.Size(), fi1.Size())
	}
	// big still lives in segment 1, which therefore must survive.
	if _, err := os.Stat(seg1); err != nil {
		t.Fatalf("segment 1 vanished while still referenced: %v", err)
	}
	// Republish big: segment 1 loses its last reference at the next
	// checkpoint and is GC'd.
	big2 := fillVector(t, cat.pool, "big2", 5000, func(i int64) float64 { return float64(-i) })
	if _, err := cat.PutVector("big", big2); err != nil {
		t.Fatal(err)
	}
	if err := cat.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(seg1); !os.IsNotExist(err) {
		t.Fatalf("unreferenced segment 1 not garbage-collected (err=%v)", err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	cat2 := openWAL(t, dir, 64, 256)
	defer cat2.Close()
	eb, _ := cat2.Get("big")
	if got, _ := eb.Vec.At(123); got != -123 {
		t.Fatalf("big[123] = %g, want -123", got)
	}
	es, _ := cat2.Get("small")
	if got, _ := es.Vec.At(5); got != 3 {
		t.Fatalf("small[5] = %g, want 3", got)
	}
}

// TestWALOffDrainsStaleWAL: a WALOff open over a directory a WAL-mode
// process crashed in still sees the acknowledged publishes, and its
// next full checkpoint absorbs and removes the log and segments.
func TestWALOffDrainsStaleWAL(t *testing.T) {
	dir := t.TempDir()
	cat := openWAL(t, dir, 64, 64)
	v := fillVector(t, cat.pool, "v", 100, func(i int64) float64 { return float64(i * i) })
	if _, err := cat.PutVector("x", v); err != nil {
		t.Fatal(err)
	}
	// Crash: no checkpoint, wal.riot holds the only copy.

	cat2, err := Open(dir, newPool(t, 64, 64)) // WALOff
	if err != nil {
		t.Fatal(err)
	}
	e, ok := cat2.Get("x")
	if !ok {
		t.Fatal("WALOff open dropped the crashed process's acknowledged publish")
	}
	if got, _ := e.Vec.At(9); got != 81 {
		t.Fatalf("x[9] = %g, want 81", got)
	}
	if _, on := cat2.WALStats(); on {
		t.Fatal("WALOff catalog reports an active WAL")
	}
	if err := cat2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, wal.FileName)); !os.IsNotExist(err) {
		t.Fatalf("stale wal.riot not removed after full checkpoint (err=%v)", err)
	}

	cat3, err := Open(dir, newPool(t, 64, 64))
	if err != nil {
		t.Fatal(err)
	}
	defer cat3.Close()
	if e, ok := cat3.Get("x"); !ok {
		t.Fatal("x lost after WAL drain + checkpoint")
	} else if got, _ := e.Vec.At(10); got != 100 {
		t.Fatalf("x[10] = %g, want 100", got)
	}
}

// TestWALInjectorFailsPublish: an injected append fault surfaces as a
// publish error, and the entry does not survive a reopen.
func TestWALInjectorFailsPublish(t *testing.T) {
	dir := t.TempDir()
	inj := func(i int, frame []byte) ([]byte, error) {
		if i == 1 {
			return frame[:3], nil // short write on the second append
		}
		return frame, nil
	}
	cat, err := OpenWith(dir, newPool(t, 64, 64), Options{WAL: WALAlways, WALInjector: inj})
	if err != nil {
		t.Fatal(err)
	}
	ok1 := fillVector(t, cat.pool, "ok", 10, func(i int64) float64 { return 1 })
	if _, err := cat.PutVector("ok", ok1); err != nil {
		t.Fatal(err)
	}
	bad := fillVector(t, cat.pool, "bad", 10, func(i int64) float64 { return 2 })
	if _, err := cat.PutVector("bad", bad); err == nil {
		t.Fatal("publish with a short-written WAL append reported success")
	}
	// Crash without checkpoint: only the acknowledged publish survives.
	cat2 := openWAL(t, dir, 64, 64)
	defer cat2.Close()
	if _, ok := cat2.Get("ok"); !ok {
		t.Fatal("acknowledged publish lost")
	}
	if _, ok := cat2.Get("bad"); ok {
		t.Fatal("failed publish resurrected by replay")
	}
}

// TestCorruptCatalogTable (satellite): damaged catalog files must fail
// Open with a descriptive error — never a panic, never silent success.
func TestCorruptCatalogTable(t *testing.T) {
	// Build one good checkpoint to mutilate.
	srcDir := t.TempDir()
	pool := newPool(t, 64, 64)
	cat, err := Open(srcDir, pool)
	if err != nil {
		t.Fatal(err)
	}
	v := fillVector(t, pool, "v", 200, func(i int64) float64 { return float64(i) })
	if _, err := cat.PutVector("x", v); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(filepath.Join(srcDir, FileName))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func() []byte
		wantSub string
	}{
		{
			name:    "truncated header",
			mutate:  func() []byte { return good[:10] }, // cut inside the block-size field
			wantSub: "loading",
		},
		{
			name: "bad magic",
			mutate: func() []byte {
				b := append([]byte(nil), good...)
				copy(b, "NOTACAT!")
				return b
			},
			wantSub: "bad magic",
		},
		{
			name: "payload shorter than declared extent",
			// Chop half a block off the end: the entry's metadata
			// declares more payload than the file holds.
			mutate:  func() []byte { return good[:len(good)-32] },
			wantSub: "truncated payload",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, FileName), tc.mutate(), 0o666); err != nil {
				t.Fatal(err)
			}
			_, err := Open(dir, newPool(t, 64, 64)) // must not panic
			if err == nil {
				t.Fatal("Open accepted a corrupt catalog")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
