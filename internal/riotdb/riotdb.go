// Package riotdb implements the paper's RIOT-DB prototype: R objects
// (dbvector, dbmatrix) transparently backed by a relational database.
// Every host-language operation is translated to SQL, and — in the full
// configuration — recorded as a view so that evaluation is deferred,
// intermediate results are pipelined away, and the database optimizer
// sees whole multi-operation expressions at once (§4).
//
// Three configurations reproduce the paper's comparison (§4.2):
//
//   - Strawman: every operation executes immediately, materializing its
//     result into a table (CREATE TABLE AS SELECT).
//   - MatNamed: operations build views (pipelining unnamed intermediates)
//     but every *named* object is materialized on assignment.
//   - Full: assignments just bind names to views; computation happens
//     only when a result is actually consumed, letting selective queries
//     (Example 1's z <- d[s]) skip almost all work.
package riotdb

import (
	"fmt"
	"strings"

	"riot/internal/relation"
	"riot/internal/sql"
)

// Mode selects the evaluation strategy.
type Mode int

// Evaluation modes, in increasing order of deferral.
const (
	Strawman Mode = iota
	MatNamed
	Full
)

func (m Mode) String() string {
	switch m {
	case Strawman:
		return "strawman"
	case MatNamed:
		return "matnamed"
	case Full:
		return "full"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Kind distinguishes vectors from matrices.
type Kind int

// Object kinds.
const (
	KindVector Kind = iota
	KindMatrix
)

// Object is a handle to a dbvector or dbmatrix: a named table or view in
// the backend. Objects are refcounted; operations retain their operands
// so that dropping an R variable cannot invalidate views built on it
// (the dependency hook the paper had to add to R).
type Object struct {
	eng     *Engine
	rel     string // backend relation name
	kind    Kind
	n       int64 // length (vector) or rows (matrix)
	m       int64 // cols (matrix), 1 for vectors
	isTable bool
	deps    []*Object
	refs    int
	dropped bool
}

// Len returns the vector length (or number of matrix elements' rows).
func (o *Object) Len() int64 { return o.n }

// Dims returns (rows, cols); vectors report (n, 1).
func (o *Object) Dims() (int64, int64) { return o.n, o.m }

// Kind returns the object kind.
func (o *Object) Kind() Kind { return o.kind }

// Rel returns the backend relation name (for tests and EXPLAIN).
func (o *Object) Rel() string { return o.rel }

// IsView reports whether the object is still an unevaluated view.
func (o *Object) IsView() bool { return !o.isTable }

// Engine is a RIOT-DB instance: an embedded SQL database plus the
// op-to-SQL translation layer.
type Engine struct {
	db   *sql.Database
	mode Mode
	seq  int
}

// New creates a RIOT-DB engine in the given mode over db.
func New(db *sql.Database, mode Mode) *Engine {
	return &Engine{db: db, mode: mode}
}

// DB exposes the underlying database (tests, EXPLAIN).
func (e *Engine) DB() *sql.Database { return e.db }

// Mode returns the evaluation mode.
func (e *Engine) Mode() Mode { return e.mode }

func (e *Engine) fresh(prefix string) string {
	e.seq++
	return fmt.Sprintf("%s_%d", prefix, e.seq)
}

// retain increments o's refcount.
func retain(o *Object) *Object {
	if o != nil {
		o.refs++
	}
	return o
}

// Release decrements the object's refcount, dropping its backend
// relation (and releasing its operands) when it reaches zero. This is
// the dependency tracking that lets RIOT-DB "safely drop views".
func (e *Engine) Release(o *Object) {
	if o == nil || o.dropped {
		return
	}
	o.refs--
	if o.refs > 0 {
		return
	}
	o.dropped = true
	_ = e.db.Drop(o.rel, !o.isTable, true)
	for _, d := range o.deps {
		e.Release(d)
	}
}

// newObject wraps a fresh backend relation, retaining operands.
func (e *Engine) newObject(rel string, kind Kind, n, m int64, isTable bool, deps ...*Object) *Object {
	o := &Object{eng: e, rel: rel, kind: kind, n: n, m: m, isTable: isTable, refs: 1}
	for _, d := range deps {
		o.deps = append(o.deps, retain(d))
	}
	return o
}

// define creates the op's result relation from its SQL definition: a
// table (strawman) or a view (deferred modes).
func (e *Engine) define(query string, kind Kind, n, m int64, deps ...*Object) (*Object, error) {
	if e.mode == Strawman {
		name := e.fresh("tmp")
		pk := []string{"I"}
		if kind == KindMatrix {
			pk = []string{"I", "J"}
		}
		sel, err := sql.ParseSelect(query)
		if err != nil {
			return nil, err
		}
		if _, err := e.db.CreateTableAs(name, sel, pk); err != nil {
			return nil, err
		}
		// Materialized: no live dependency on the operands.
		return e.newObject(name, kind, n, m, true), nil
	}
	name := e.fresh("v")
	cols := []string{"I", "V"}
	if kind == KindMatrix {
		cols = []string{"I", "J", "V"}
	}
	sel, err := sql.ParseSelect(query)
	if err != nil {
		return nil, err
	}
	if err := e.db.CreateView(name, cols, sel); err != nil {
		return nil, err
	}
	return e.newObject(name, kind, n, m, false, deps...), nil
}

// NewVector creates a dbvector of length n with values gen(i), stored as
// a table (I, V) clustered and indexed by I.
func (e *Engine) NewVector(n int64, gen func(i int64) float64) (*Object, error) {
	name := e.fresh("vec")
	t, err := e.db.CreateTable(name, []string{"I", "V"}, []string{"I"})
	if err != nil {
		return nil, err
	}
	row := make([]float64, 2)
	if err := e.db.BulkLoad(t, n, func(i int64) []float64 {
		row[0], row[1] = float64(i), gen(i)
		return row
	}); err != nil {
		return nil, err
	}
	return e.newObject(name, KindVector, n, 1, true), nil
}

// NewMatrix creates a dbmatrix (rows×cols) stored as (I, J, V) in
// row-major key order.
func (e *Engine) NewMatrix(rows, cols int64, gen func(i, j int64) float64) (*Object, error) {
	name := e.fresh("mat")
	t, err := e.db.CreateTable(name, []string{"I", "J", "V"}, []string{"I", "J"})
	if err != nil {
		return nil, err
	}
	row := make([]float64, 3)
	if err := e.db.BulkLoad(t, rows*cols, func(k int64) []float64 {
		row[0], row[1], row[2] = float64(k/cols), float64(k%cols), gen(k/cols, k%cols)
		return row
	}); err != nil {
		return nil, err
	}
	return e.newObject(name, KindMatrix, rows, cols, true), nil
}

// sqlOp maps host operators to SQL.
var sqlOp = map[string]string{
	"+": "+", "-": "-", "*": "*", "/": "/", "^": "^", "%%": "%",
	"==": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
	"&": "AND", "|": "OR",
}

// Arith applies a vectorized binary operator to two objects of equal
// shape: the strawman's SELECT E1.I, E1.V+E2.V FROM E1, E2 WHERE E1.I=E2.I.
func (e *Engine) Arith(op string, a, b *Object) (*Object, error) {
	sop, ok := sqlOp[op]
	if !ok {
		return nil, fmt.Errorf("riotdb: unknown operator %q", op)
	}
	if a.kind != b.kind || a.n != b.n || a.m != b.m {
		return nil, fmt.Errorf("riotdb: shape mismatch %dx%d vs %dx%d", a.n, a.m, b.n, b.m)
	}
	// Operands are always aliased: the two sides may be the same
	// relation (x*x), and SQL requires distinct bindings.
	if a.kind == KindMatrix {
		q := fmt.Sprintf(
			"SELECT e1.I AS I, e1.J AS J, e1.V %[3]s e2.V AS V FROM %[1]s e1, %[2]s e2 WHERE e1.I=e2.I AND e1.J=e2.J",
			a.rel, b.rel, sop)
		return e.define(q, KindMatrix, a.n, a.m, a, b)
	}
	q := fmt.Sprintf(
		"SELECT e1.I AS I, e1.V %[3]s e2.V AS V FROM %[1]s e1, %[2]s e2 WHERE e1.I=e2.I",
		a.rel, b.rel, sop)
	return e.define(q, KindVector, a.n, 1, a, b)
}

// ArithScalar applies op with a scalar operand; scalarLeft places the
// scalar on the left (for s - x and the like).
func (e *Engine) ArithScalar(op string, a *Object, s float64, scalarLeft bool) (*Object, error) {
	sop, ok := sqlOp[op]
	if !ok {
		return nil, fmt.Errorf("riotdb: unknown operator %q", op)
	}
	lhs, rhs := "e1.V", fmt.Sprintf("%g", s)
	if scalarLeft {
		lhs, rhs = rhs, lhs
	}
	if a.kind == KindMatrix {
		q := fmt.Sprintf("SELECT e1.I AS I, e1.J AS J, %[2]s %[3]s %[4]s AS V FROM %[1]s e1",
			a.rel, lhs, sop, rhs)
		return e.define(q, KindMatrix, a.n, a.m, a)
	}
	q := fmt.Sprintf("SELECT e1.I AS I, %[2]s %[3]s %[4]s AS V FROM %[1]s e1", a.rel, lhs, sop, rhs)
	return e.define(q, KindVector, a.n, 1, a)
}

// Map applies a unary SQL function (SQRT, ABS, EXP, LOG, SIN, COS) to
// every element.
func (e *Engine) Map(fn string, a *Object) (*Object, error) {
	fn = strings.ToUpper(fn)
	switch fn {
	case "SQRT", "ABS", "EXP", "LOG", "SIN", "COS", "FLOOR", "CEIL":
	default:
		return nil, fmt.Errorf("riotdb: unknown function %q", fn)
	}
	if a.kind == KindMatrix {
		q := fmt.Sprintf("SELECT e1.I AS I, e1.J AS J, %[2]s(e1.V) AS V FROM %[1]s e1", a.rel, fn)
		return e.define(q, KindMatrix, a.n, a.m, a)
	}
	q := fmt.Sprintf("SELECT e1.I AS I, %[2]s(e1.V) AS V FROM %[1]s e1", a.rel, fn)
	return e.define(q, KindVector, a.n, 1, a)
}

// IndexBy implements z <- d[s]: dereferencing vector d with the index
// vector s translates to a join between them (§4.1).
func (e *Engine) IndexBy(d, s *Object) (*Object, error) {
	if d.kind != KindVector || s.kind != KindVector {
		return nil, fmt.Errorf("riotdb: IndexBy requires vectors")
	}
	q := fmt.Sprintf(
		"SELECT e2.I AS I, e1.V AS V FROM %[1]s e1, %[2]s e2 WHERE e1.I=e2.V",
		d.rel, s.rel)
	return e.define(q, KindVector, s.n, 1, d, s)
}

// UpdateWhere implements b[b > k] <- val style masked assignment. As the
// paper notes (§5), RIOT-DB must force materialization before modifying;
// the update itself is computed with branch-free arithmetic because the
// SQL subset has no CASE.
func (e *Engine) UpdateWhere(a *Object, cmpOp string, threshold, val float64) (*Object, error) {
	if _, err := e.Force(a); err != nil {
		return nil, err
	}
	sop, ok := sqlOp[cmpOp]
	if !ok {
		return nil, fmt.Errorf("riotdb: unknown comparison %q", cmpOp)
	}
	cond := fmt.Sprintf("(e1.V %s %g)", sop, threshold)
	expr := fmt.Sprintf("e1.V*(1-%[1]s) + %[2]g*%[1]s", cond, val)
	name := e.fresh("tmp")
	q := fmt.Sprintf("SELECT e1.I AS I, %[2]s AS V FROM %[1]s e1", a.rel, expr)
	sel, err := sql.ParseSelect(q)
	if err != nil {
		return nil, err
	}
	if _, err := e.db.CreateTableAs(name, sel, []string{"I"}); err != nil {
		return nil, err
	}
	return e.newObject(name, KindVector, a.n, 1, true), nil
}

// MatMul multiplies two dbmatrix objects with the aggregation query of
// §4.1. The GROUP BY makes the view non-mergeable, so each multiply in a
// chain is its own hash-join + sort + aggregate step — exactly the plan
// the paper criticizes.
func (e *Engine) MatMul(a, b *Object) (*Object, error) {
	if a.kind != KindMatrix || b.kind != KindMatrix {
		return nil, fmt.Errorf("riotdb: %%*%% requires matrices")
	}
	if a.m != b.n {
		return nil, fmt.Errorf("riotdb: dimension mismatch %dx%d %%*%% %dx%d", a.n, a.m, b.n, b.m)
	}
	q := fmt.Sprintf(
		"SELECT e1.I AS I, e2.J AS J, SUM(e1.V*e2.V) AS V FROM %[1]s e1, %[2]s e2 WHERE e1.J=e2.I GROUP BY e1.I, e2.J",
		a.rel, b.rel)
	return e.define(q, KindMatrix, a.n, b.m, a, b)
}

// Sample creates the index vector of R's sample(n, k): k distinct values
// drawn from [0, n) with a deterministic generator, stored as a table
// (I, V) where V is the sampled index.
func (e *Engine) Sample(n, k int64, seed uint64) (*Object, error) {
	idx := SampleIndices(n, k, seed)
	name := e.fresh("smp")
	t, err := e.db.CreateTable(name, []string{"I", "V"}, []string{"I"})
	if err != nil {
		return nil, err
	}
	if err := e.db.BulkLoad(t, k, func(i int64) []float64 {
		return []float64{float64(i), float64(idx[i])}
	}); err != nil {
		return nil, err
	}
	return e.newObject(name, KindVector, k, 1, true), nil
}

// SampleIndices returns k distinct pseudo-random values in [0, n),
// using a seeded xorshift generator (deterministic across runs).
func SampleIndices(n, k int64, seed uint64) []int64 {
	if k > n {
		k = n
	}
	state := seed | 1
	rng := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	// Floyd's algorithm: k distinct samples without building [0,n).
	chosen := make(map[int64]bool, k)
	out := make([]int64, 0, k)
	for j := n - k; j < n; j++ {
		t := int64(rng() % uint64(j+1))
		if chosen[t] {
			t = j
		}
		chosen[t] = true
		out = append(out, t)
	}
	return out
}

// Assign is called when the host language binds the object to a name.
// MatNamed forces materialization (the paper's "materializes all named
// objects"); Full and Strawman leave the object as is (Strawman results
// are tables already).
func (e *Engine) Assign(o *Object) (*Object, error) {
	if e.mode == MatNamed && !o.isTable {
		return e.Force(o)
	}
	return o, nil
}

// Force materializes a view-backed object into a table, in place: the
// object's relation becomes the new table and its dependencies are
// released.
func (e *Engine) Force(o *Object) (*Object, error) {
	if o.isTable {
		return o, nil
	}
	name := e.fresh("mat")
	v, ok := e.db.ViewDef(o.rel)
	if !ok {
		return nil, fmt.Errorf("riotdb: view %q missing", o.rel)
	}
	pk := []string{"I"}
	if o.kind == KindMatrix {
		pk = []string{"I", "J"}
	}
	if _, err := e.db.CreateTableAs(name, v.Def, pk); err != nil {
		return nil, err
	}
	_ = e.db.Drop(o.rel, true, true)
	for _, d := range o.deps {
		e.Release(d)
	}
	o.deps = nil
	o.rel = name
	o.isTable = true
	return o, nil
}

// Fetch evaluates the object (running its accumulated view expansion
// through the optimizer) and returns up to limit elements in index
// order; limit < 0 fetches everything. This is what print(z) triggers.
func (e *Engine) Fetch(o *Object, limit int64) ([]relation.Tuple, error) {
	order := "ORDER BY I"
	if o.kind == KindMatrix {
		order = "ORDER BY I, J"
	}
	q := fmt.Sprintf("SELECT * FROM %s %s", o.rel, order)
	if limit >= 0 {
		q += fmt.Sprintf(" LIMIT %d", limit)
	}
	rows, _, err := e.db.QueryAll(q)
	return rows, err
}

// Sum evaluates SUM(V) over the object, a cheap way for tests and
// examples to force full evaluation.
func (e *Engine) Sum(o *Object) (float64, error) {
	rows, _, err := e.db.QueryAll(fmt.Sprintf("SELECT SUM(e1.V) AS S FROM %s e1", o.rel))
	if err != nil {
		return 0, err
	}
	return rows[0][0], nil
}

// Explain returns the physical plan for evaluating the object.
func (e *Engine) Explain(o *Object) (string, error) {
	return e.db.Explain(fmt.Sprintf("SELECT * FROM %s", o.rel))
}
