package riotdb

import (
	"math"
	"strings"
	"testing"

	"riot/internal/buffer"
	"riot/internal/disk"
	"riot/internal/relation"
	"riot/internal/sql"
)

func newEngine(mode Mode, blockElems, frames int, workMem int64) *Engine {
	dev := disk.NewDevice(blockElems)
	pool := buffer.New(dev, frames)
	db := sql.NewDatabase(relation.NewContext(pool, workMem))
	return New(db, mode)
}

func TestVectorArithAllModes(t *testing.T) {
	for _, mode := range []Mode{Strawman, MatNamed, Full} {
		e := newEngine(mode, 64, 32, 0)
		x, err := e.NewVector(100, func(i int64) float64 { return float64(i) })
		must(t, err)
		y, err := e.NewVector(100, func(i int64) float64 { return 2 })
		must(t, err)
		sum, err := e.Arith("+", x, y)
		must(t, err)
		sq, err := e.Arith("*", sum, sum)
		must(t, err)
		rows, err := e.Fetch(sq, -1)
		must(t, err)
		if len(rows) != 100 {
			t.Fatalf("%v: %d rows", mode, len(rows))
		}
		for _, r := range rows {
			want := (r[0] + 2) * (r[0] + 2)
			if r[1] != want {
				t.Fatalf("%v: row %v want %v", mode, r, want)
			}
		}
	}
}

func TestStrawmanMaterializesEverything(t *testing.T) {
	e := newEngine(Strawman, 64, 32, 0)
	x, _ := e.NewVector(50, func(i int64) float64 { return float64(i) })
	y, err := e.ArithScalar("-", x, 3, false)
	must(t, err)
	if y.IsView() {
		t.Fatal("strawman result should be a table")
	}
	// Materialization writes the result to disk immediately.
	if e.DB().Context().Pool.Device().Stats().BlocksWritten == 0 {
		t.Fatal("no writes recorded for strawman materialization")
	}
}

func TestFullModeDefersEverything(t *testing.T) {
	e := newEngine(Full, 64, 32, 0)
	x, _ := e.NewVector(50, func(i int64) float64 { return float64(i) })
	e.DB().Context().Pool.Device().ResetStats()
	a, err := e.ArithScalar("-", x, 1, false)
	must(t, err)
	b, err := e.Map("SQRT", a)
	must(t, err)
	c, err := e.Arith("+", b, b)
	must(t, err)
	if !a.IsView() || !b.IsView() || !c.IsView() {
		t.Fatal("full mode should build views only")
	}
	s := e.DB().Context().Pool.Device().Stats()
	if s.TotalBlocks() != 0 {
		t.Fatalf("deferred ops performed %d block I/Os", s.TotalBlocks())
	}
}

func TestMatNamedAssignMaterializes(t *testing.T) {
	e := newEngine(MatNamed, 64, 32, 0)
	x, _ := e.NewVector(50, func(i int64) float64 { return float64(i) })
	a, err := e.ArithScalar("*", x, 2, false)
	must(t, err)
	if !a.IsView() {
		t.Fatal("unnamed intermediate should be a view")
	}
	a2, err := e.Assign(a)
	must(t, err)
	if a2.IsView() {
		t.Fatal("named object should be materialized in MatNamed mode")
	}
	rows, err := e.Fetch(a2, 3)
	must(t, err)
	if len(rows) != 3 || rows[2][1] != 4 {
		t.Fatalf("rows=%v", rows)
	}
}

func TestFullAssignKeepsView(t *testing.T) {
	e := newEngine(Full, 64, 32, 0)
	x, _ := e.NewVector(50, func(i int64) float64 { return float64(i) })
	a, _ := e.ArithScalar("*", x, 2, false)
	a2, err := e.Assign(a)
	must(t, err)
	if !a2.IsView() {
		t.Fatal("full mode assign must not materialize")
	}
}

func TestExample1PipelineAndSelectivity(t *testing.T) {
	// Example 1 of the paper, end to end in Full mode: the final fetch
	// of z should evaluate selectively via index probes.
	e := newEngine(Full, 128, 64, 0)
	n := int64(1 << 20) // large enough that index probes beat re-scanning

	x, _ := e.NewVector(n, func(i int64) float64 { return float64(i % 997) })
	y, _ := e.NewVector(n, func(i int64) float64 { return float64(i % 991) })

	dist := func(v *Object, s float64) *Object {
		d, err := e.ArithScalar("-", v, s, false)
		must(t, err)
		sq, err := e.Arith("*", d, d)
		must(t, err)
		return sq
	}
	dx1, dy1 := dist(x, 3), dist(y, 4)
	sum1, err := e.Arith("+", dx1, dy1)
	must(t, err)
	r1, err := e.Map("SQRT", sum1)
	must(t, err)
	dx2, dy2 := dist(x, 100), dist(y, 200)
	sum2, err := e.Arith("+", dx2, dy2)
	must(t, err)
	r2, err := e.Map("SQRT", sum2)
	must(t, err)
	d, err := e.Arith("+", r1, r2)
	must(t, err)
	d, err = e.Assign(d)
	must(t, err)

	s, err := e.Sample(n, 100, 42)
	must(t, err)
	z, err := e.IndexBy(d, s)
	must(t, err)
	z, err = e.Assign(z)
	must(t, err)

	if err := e.DB().Context().Pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	e.DB().Context().Pool.Device().ResetStats()
	rows, err := e.Fetch(z, -1)
	must(t, err)
	if len(rows) != 100 {
		t.Fatalf("z has %d elements", len(rows))
	}
	// Verify values against direct computation.
	idx := SampleIndices(n, 100, 42)
	for k, r := range rows {
		i := idx[int(r[0])]
		xi := float64(i % 997)
		yi := float64(i % 991)
		want := math.Sqrt((xi-3)*(xi-3)+(yi-4)*(yi-4)) +
			math.Sqrt((xi-100)*(xi-100)+(yi-200)*(yi-200))
		if math.Abs(r[1]-want) > 1e-9 {
			t.Fatalf("row %d: got %v want %v", k, r[1], want)
		}
	}
	// Selectivity: far fewer blocks than one scan of x.
	reads := e.DB().Context().Pool.Device().Stats().BlocksRead
	xt, _ := e.DB().Table(x.Rel())
	if int(reads) >= xt.Heap.Blocks() {
		t.Fatalf("full-mode fetch read %d blocks; x alone has %d", reads, xt.Heap.Blocks())
	}
}

func TestIndexByExplainsAsINL(t *testing.T) {
	e := newEngine(Full, 128, 64, 0)
	x, _ := e.NewVector(50000, func(i int64) float64 { return float64(i) })
	d, err := e.Map("SQRT", x)
	must(t, err)
	s, err := e.Sample(50000, 10, 7)
	must(t, err)
	z, err := e.IndexBy(d, s)
	must(t, err)
	desc, err := e.Explain(z)
	must(t, err)
	if !strings.Contains(desc, "INLJoin") {
		t.Fatalf("expected INL plan for selective fetch: %s", desc)
	}
}

func TestMatMulChainViaSQL(t *testing.T) {
	e := newEngine(Full, 64, 32, 4096)
	const n = 5
	a, err := e.NewMatrix(n, n, func(i, j int64) float64 { return float64(i + j) })
	must(t, err)
	b, err := e.NewMatrix(n, n, func(i, j int64) float64 { return float64(i - j) })
	must(t, err)
	c, err := e.NewMatrix(n, n, func(i, j int64) float64 { return float64(i * j) })
	must(t, err)
	ab, err := e.MatMul(a, b)
	must(t, err)
	abc, err := e.MatMul(ab, c)
	must(t, err)
	rows, err := e.Fetch(abc, -1)
	must(t, err)
	if len(rows) != n*n {
		t.Fatalf("%d cells", len(rows))
	}
	// Reference product.
	var am, bm, cm [n][n]float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			am[i][j] = float64(i + j)
			bm[i][j] = float64(i - j)
			cm[i][j] = float64(i * j)
		}
	}
	var abm, abcm [n][n]float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				abm[i][j] += am[i][k] * bm[k][j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				abcm[i][j] += abm[i][k] * cm[k][j]
			}
		}
	}
	for _, r := range rows {
		if math.Abs(r[2]-abcm[int(r[0])][int(r[1])]) > 1e-9 {
			t.Fatalf("cell %v want %v", r, abcm[int(r[0])][int(r[1])])
		}
	}
}

func TestUpdateWhere(t *testing.T) {
	e := newEngine(Full, 64, 32, 0)
	a, _ := e.NewVector(20, func(i int64) float64 { return float64(i) })
	b, err := e.Arith("*", a, a)
	must(t, err)
	bu, err := e.UpdateWhere(b, ">", 100, 100)
	must(t, err)
	rows, err := e.Fetch(bu, -1)
	must(t, err)
	for _, r := range rows {
		want := r[0] * r[0]
		if want > 100 {
			want = 100
		}
		if r[1] != want {
			t.Fatalf("row %v want %v", r, want)
		}
	}
	if bu.IsView() {
		t.Fatal("update must force materialization in RIOT-DB")
	}
}

func TestReleaseDropsCascade(t *testing.T) {
	e := newEngine(Full, 64, 32, 0)
	x, _ := e.NewVector(10, func(i int64) float64 { return 1 })
	a, _ := e.ArithScalar("+", x, 1, false)
	b, _ := e.Map("SQRT", a)
	// Dropping x and a should not invalidate b: b retains them.
	e.Release(x)
	e.Release(a)
	rows, err := e.Fetch(b, -1)
	must(t, err)
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	// Releasing b cascades: all views and the base table go away.
	e.Release(b)
	if e.DB().HasRelation(x.Rel()) || e.DB().HasRelation(a.Rel()) || e.DB().HasRelation(b.Rel()) {
		t.Fatal("cascade release left relations behind")
	}
}

func TestSampleIndicesDistinctAndDeterministic(t *testing.T) {
	a := SampleIndices(1000, 100, 7)
	b := SampleIndices(1000, 100, 7)
	if len(a) != 100 {
		t.Fatalf("%d samples", len(a))
	}
	seen := map[int64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
		if seen[a[i]] {
			t.Fatalf("duplicate sample %d", a[i])
		}
		if a[i] < 0 || a[i] >= 1000 {
			t.Fatalf("sample %d out of range", a[i])
		}
		seen[a[i]] = true
	}
	c := SampleIndices(1000, 100, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestSumForcesEvaluation(t *testing.T) {
	e := newEngine(Full, 64, 32, 0)
	x, _ := e.NewVector(100, func(i int64) float64 { return float64(i) })
	d, err := e.ArithScalar("*", x, 2, false)
	must(t, err)
	s, err := e.Sum(d)
	must(t, err)
	if s != 9900 {
		t.Fatalf("sum=%v", s)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
