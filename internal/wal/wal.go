// Package wal implements the write-ahead log underneath RIOT's durable
// catalog: an append-only, checksummed record log on the host
// filesystem that makes every acknowledged publish survive a crash —
// kill -9 included — that lands between checkpoints.
//
// The log is deliberately ignorant of what a record means. Callers
// append opaque payloads tagged with a RecordType; the catalog encodes
// published entries and deletes into them, and replays them over its
// last checkpoint on open. What the log owns is the durability
// contract:
//
//   - Every record is framed with a length, a monotonically increasing
//     LSN, and a CRC32C over the whole frame. A crash mid-append leaves
//     a torn tail that fails the checksum (or the length or LSN
//     continuity check); Open truncates the tail at the last good
//     record instead of failing, because a torn tail is the expected
//     shape of a crash, not corruption.
//   - In ModeAlways, Append's returned ack function blocks until a
//     dedicated flusher goroutine has fsync'd a batch that covers the
//     record. Concurrent appenders queue while one fsync is in flight
//     and are released together by the next — classic group commit, so
//     N sessions publishing at once pay ~1 fsync, not N.
//   - In ModeInterval, appends are acknowledged immediately and a
//     background ticker fsyncs every Interval; the loss window after a
//     crash is bounded by the interval.
//
// Rotate atomically replaces the log with an empty one whose header
// records the checkpoint's durable LSN, so replay after a checkpoint
// skips nothing and re-applies nothing.
//
// # On-disk format
//
// One file, little-endian:
//
//	[8]byte  magic "RIOTWAL1"
//	uint64   base LSN (records start at base+1; the durable LSN of the
//	         checkpoint this log continues from)
//	records:
//	  uint32 frame length n (= 1 type byte + 8 LSN bytes + payload)
//	  uint8  record type
//	  uint64 LSN
//	  payload (n-9 bytes)
//	  uint32 CRC32C over the length field and the n frame bytes
//
// Fault injection for tests rides on Options.Injector, which sees (and
// may truncate or fail) the framed bytes of each append — the hook the
// torn-tail and failed-device tests use to produce real bad files.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Magic identifies a WAL file (and its format version).
const Magic = "RIOTWAL1"

// FileName is the log file inside a database directory.
const FileName = "wal.riot"

// headerSize is the byte length of the file header (magic + base LSN).
const headerSize = len(Magic) + 8

// frameOverhead is the framed size of a record beyond its payload:
// length field, type byte, LSN, and trailing CRC.
const frameOverhead = 4 + 1 + 8 + 4

// maxFrame bounds one record's frame length so a corrupt length field
// cannot drive a giant allocation during replay.
const maxFrame = 1 << 30

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the same checksum iSCSI and ext4 use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RecordType tags what a record means to the layer replaying it.
type RecordType uint8

// Record types the catalog appends.
const (
	// RecPublish carries one serialized catalog entry (name, geometry,
	// tile payloads) whose publish is being committed.
	RecPublish RecordType = 1
	// RecDelete carries the name of a deleted catalog entry.
	RecDelete RecordType = 2
)

// Mode selects when appended records become durable.
type Mode int

// Durability modes.
const (
	// ModeAlways acknowledges an append only after an fsync'd group
	// flush covers it.
	ModeAlways Mode = iota
	// ModeInterval acknowledges appends immediately and fsyncs on a
	// background timer (loss window = the interval).
	ModeInterval
)

// String renders the mode the way the \wal command and Config docs
// spell it.
func (m Mode) String() string {
	if m == ModeInterval {
		return "interval"
	}
	return "always"
}

// Record is one replayed log record.
type Record struct {
	// LSN is the record's log sequence number.
	LSN uint64
	// Type tags the record for the replaying layer.
	Type RecordType
	// Payload is the record body, owned by the caller after Open.
	Payload []byte
}

// Injector intercepts the framed bytes of the i-th append (0-based)
// before they reach the file. Returning a shorter slice simulates a
// crash mid-write (the prefix is written, then the log wedges);
// returning an error without shortening simulates a failed device. A
// nil return slice with a nil error writes nothing. Production code
// never installs one.
type Injector func(appendIndex int, frame []byte) ([]byte, error)

// Options configure Open.
type Options struct {
	// Mode selects the durability mode (default ModeAlways).
	Mode Mode
	// Interval is ModeInterval's flush period (default 50ms).
	Interval time.Duration
	// Injector, when non-nil, intercepts every append (tests only).
	Injector Injector
}

// Stats is a snapshot of the log's counters, surfaced by the server's
// \wal command.
type Stats struct {
	// Mode is the durability mode ("always" or "interval").
	Mode string
	// Appends counts records appended this process.
	Appends int64
	// AppendedBytes counts framed bytes appended this process.
	AppendedBytes int64
	// Fsyncs counts file syncs issued.
	Fsyncs int64
	// GroupedAcks counts appenders released by group flushes — when it
	// exceeds Fsyncs, group commit is batching concurrent sessions.
	GroupedAcks int64
	// LastLSN is the newest assigned LSN (0 when the log is empty).
	LastLSN uint64
	// DurableLSN is the newest LSN known fsync'd (or covered by a
	// checkpoint rotation).
	DurableLSN uint64
	// Rotations counts checkpoint rotations.
	Rotations int64
	// Replayed counts records recovered by Open.
	Replayed int64
	// TruncatedBytes is the torn tail length Open cut off (0 on a
	// clean log).
	TruncatedBytes int64
}

// waiter is one Append blocked on durability.
type waiter struct {
	lsn uint64
	ch  chan error
}

// Log is an append-only, checksummed, group-committed record log. All
// methods are safe for concurrent use.
type Log struct {
	path string
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	base      uint64 // header base LSN of the current file
	next      uint64 // LSN the next append gets
	durable   uint64
	appendIdx int
	waiters   []waiter
	sticky    error // first write/flush error; the log is wedged after
	closed    bool

	appends        int64
	appendedBytes  int64
	fsyncs         int64
	groupedAcks    int64
	rotations      int64
	replayed       int64
	truncatedBytes int64

	flushCh chan struct{}
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

// Open opens (or creates) the log at path, replays its records, and
// returns them in LSN order along with the ready-to-append log. A torn
// tail — short frame, checksum mismatch, or LSN discontinuity — is
// truncated at the last good record, not treated as an error: that is
// what a crash mid-append leaves behind. The caller applies records
// with LSN greater than its checkpoint's durable LSN and ignores the
// rest (replay is idempotent).
func Open(path string, opts Options) (*Log, []Record, error) {
	if opts.Interval <= 0 {
		opts.Interval = 50 * time.Millisecond
	}
	l := &Log{
		path:    path,
		dir:     filepath.Dir(path),
		opts:    opts,
		flushCh: make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
	}
	var recs []Record
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		if err := l.writeFresh(path, 0); err != nil {
			return nil, nil, err
		}
	case err != nil:
		return nil, nil, fmt.Errorf("wal: %w", err)
	default:
		var goodOff int64
		recs, goodOff, err = l.scan(data)
		if err != nil {
			return nil, nil, err
		}
		if goodOff < int64(len(data)) {
			l.truncatedBytes = int64(len(data)) - goodOff
			if err := os.Truncate(path, goodOff); err != nil {
				return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o666)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<20)
	l.replayed = int64(len(recs))
	l.next = l.base + uint64(len(recs)) + 1
	l.durable = l.next - 1 // everything on disk at open is durable
	l.wg.Add(1)
	if opts.Mode == ModeInterval {
		go l.intervalFlusher()
	} else {
		go l.groupFlusher()
	}
	return l, recs, nil
}

// writeFresh creates an empty log whose header continues from base,
// fsyncs it and its directory, and records base in l.
func (l *Log) writeFresh(path string, base uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	hdr := make([]byte, headerSize)
	copy(hdr, Magic)
	binary.LittleEndian.PutUint64(hdr[len(Magic):], base)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.base = base
	return SyncDir(l.dir)
}

// scan validates data's header and records, returning the records and
// the offset after the last good one. Frame damage is reported via the
// offset (the caller truncates); header damage is an error — a log
// whose header is unreadable cannot be safely continued.
func (l *Log) scan(data []byte) ([]Record, int64, error) {
	if len(data) < headerSize {
		return nil, 0, fmt.Errorf("wal: file shorter than its %d-byte header (%d bytes)", headerSize, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, 0, fmt.Errorf("wal: bad magic %q (not a WAL file, or an unsupported version)", data[:len(Magic)])
	}
	l.base = binary.LittleEndian.Uint64(data[len(Magic):headerSize])
	var recs []Record
	off := int64(headerSize)
	expect := l.base + 1
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off, nil // clean EOF
		}
		if len(rest) < 4 {
			return recs, off, nil // torn length field
		}
		n := binary.LittleEndian.Uint32(rest)
		if n < 9 || n > maxFrame || int64(len(rest)) < int64(n)+8 {
			return recs, off, nil // implausible length or torn frame
		}
		frame := rest[:4+n]
		wantCRC := binary.LittleEndian.Uint32(rest[4+n:])
		if crc32.Checksum(frame, castagnoli) != wantCRC {
			return recs, off, nil // torn or corrupt record
		}
		lsn := binary.LittleEndian.Uint64(frame[5:13])
		if lsn != expect {
			return recs, off, nil // discontinuity: everything after is suspect
		}
		payload := make([]byte, n-9)
		copy(payload, frame[13:])
		recs = append(recs, Record{LSN: lsn, Type: RecordType(frame[4]), Payload: payload})
		expect++
		off += int64(n) + 8
	}
}

// encodeFrame builds the framed bytes for one record.
func encodeFrame(t RecordType, lsn uint64, payload []byte) []byte {
	n := uint32(1 + 8 + len(payload))
	frame := make([]byte, int(n)+8)
	binary.LittleEndian.PutUint32(frame, n)
	frame[4] = byte(t)
	binary.LittleEndian.PutUint64(frame[5:], lsn)
	copy(frame[13:], payload)
	crc := crc32.Checksum(frame[:4+n], castagnoli)
	binary.LittleEndian.PutUint32(frame[4+n:], crc)
	return frame
}

// Append writes one record to the log buffer and returns its LSN plus
// an ack function enforcing the durability mode: in ModeAlways the ack
// blocks until a group flush has fsync'd the record (many concurrent
// acks are released by one fsync); in ModeInterval the ack is nil and
// the background timer bounds the loss window. A non-nil error means
// the record was not logged; after the first write error the log is
// wedged and every later Append fails.
func (l *Log) Append(t RecordType, payload []byte) (uint64, func() error, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, nil, fmt.Errorf("wal: log is closed")
	}
	if l.sticky != nil {
		err := l.sticky
		l.mu.Unlock()
		return 0, nil, err
	}
	lsn := l.next
	frame := encodeFrame(t, lsn, payload)
	idx := l.appendIdx
	l.appendIdx++
	if inj := l.opts.Injector; inj != nil {
		mutated, injErr := inj(idx, frame)
		if injErr != nil || len(mutated) != len(frame) {
			// Simulated crash or device failure: push whatever the
			// injector let through straight to the file (past the
			// buffer, so the torn bytes are really there for the next
			// Open to find), then wedge.
			if flushErr := l.w.Flush(); flushErr == nil && len(mutated) > 0 {
				l.f.Write(mutated)
			}
			if injErr == nil {
				injErr = fmt.Errorf("wal: injected short write (%d of %d bytes)", len(mutated), len(frame))
			}
			l.sticky = injErr
			l.mu.Unlock()
			return 0, nil, injErr
		}
		frame = mutated
	}
	if _, err := l.w.Write(frame); err != nil {
		l.sticky = err
		l.mu.Unlock()
		return 0, nil, err
	}
	l.next++
	l.appends++
	l.appendedBytes += int64(len(frame))
	if l.opts.Mode == ModeInterval {
		l.mu.Unlock()
		return lsn, nil, nil
	}
	ch := make(chan error, 1)
	l.waiters = append(l.waiters, waiter{lsn: lsn, ch: ch})
	l.mu.Unlock()
	select {
	case l.flushCh <- struct{}{}:
	default: // a flush is already scheduled; it will cover us
	}
	return lsn, func() error { return <-ch }, nil
}

// groupFlusher is ModeAlways's dedicated flusher: each wakeup flushes
// and fsyncs once, releasing every appender queued up to that point.
func (l *Log) groupFlusher() {
	defer l.wg.Done()
	for {
		select {
		case <-l.stopCh:
			return
		case <-l.flushCh:
			l.flush()
		}
	}
}

// intervalFlusher fsyncs on the ModeInterval timer.
func (l *Log) intervalFlusher() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopCh:
			return
		case <-t.C:
			l.flush()
		}
	}
}

// flush flushes the buffer, fsyncs, advances the durable LSN, and
// releases queued waiters. It holds the log lock across the fsync, so
// appends racing the flush queue for the next batch — which is exactly
// what makes the commit a group.
func (l *Log) flush() error {
	l.mu.Lock()
	ws := l.waiters
	l.waiters = nil
	err := l.sticky
	if err == nil {
		if err = l.w.Flush(); err == nil {
			err = l.f.Sync()
			l.fsyncs++
		}
		if err != nil {
			l.sticky = err
		}
	}
	if err == nil {
		l.durable = l.next - 1
	}
	l.groupedAcks += int64(len(ws))
	l.mu.Unlock()
	for _, w := range ws {
		w.ch <- err
	}
	return err
}

// Sync forces an immediate flush+fsync (interval mode's \checkpoint
// path and the tests use it).
func (l *Log) Sync() error { return l.flush() }

// LastLSN returns the newest assigned LSN (0 when nothing was ever
// appended).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Rotate atomically replaces the log with an empty one whose header
// continues from durableLSN — the LSN the just-written checkpoint
// covers. Records at or below durableLSN are durable through the
// checkpoint, so pending ModeAlways waiters are released successfully
// without another fsync. On error the old log is untouched and still
// valid.
func (l *Log) Rotate(durableLSN uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if durableLSN+1 < l.next {
		return fmt.Errorf("wal: rotation to LSN %d would drop records up to %d", durableLSN, l.next-1)
	}
	tmp := l.path + ".tmp"
	nl := &Log{dir: l.dir}
	if err := nl.writeFresh(tmp, durableLSN); err != nil {
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := SyncDir(l.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o666)
	if err != nil {
		return fmt.Errorf("wal: reopening rotated log: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f.Close()
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<20)
	l.base = durableLSN
	if l.next < durableLSN+1 {
		l.next = durableLSN + 1
	}
	l.durable = l.next - 1
	l.rotations++
	ws := l.waiters
	l.waiters = nil
	l.groupedAcks += int64(len(ws))
	for _, w := range ws {
		w.ch <- nil // durable via the checkpoint that triggered the rotation
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Mode:           l.opts.Mode.String(),
		Appends:        l.appends,
		AppendedBytes:  l.appendedBytes,
		Fsyncs:         l.fsyncs,
		GroupedAcks:    l.groupedAcks,
		LastLSN:        l.next - 1,
		DurableLSN:     l.durable,
		Rotations:      l.rotations,
		Replayed:       l.replayed,
		TruncatedBytes: l.truncatedBytes,
	}
}

// Close flushes and fsyncs outstanding records, stops the flusher, and
// closes the file. Waiters still queued are released by the final
// flush. Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stopCh)
	l.wg.Wait()
	flushErr := l.flush()
	if err := l.f.Close(); err != nil && flushErr == nil {
		flushErr = err
	}
	return flushErr
}

// SyncDir fsyncs a directory so a rename inside it survives a crash —
// the step POSIX requires but almost everyone forgets. The catalog
// calls it after every checkpoint and rotation rename.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", dir, err)
	}
	return nil
}
