package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, path string, opts Options) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func appendAck(t *testing.T, l *Log, typ RecordType, payload []byte) uint64 {
	t.Helper()
	lsn, ack, err := l.Append(typ, payload)
	if err != nil {
		t.Fatal(err)
	}
	if ack != nil {
		if err := ack(); err != nil {
			t.Fatal(err)
		}
	}
	return lsn
}

// TestAppendReplayRoundTrip: records written in one "process" come back
// in order, with types, LSNs, and payloads intact, in a second one.
func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	l, recs := openT(t, path, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("payload-%d-%s", i, string(bytes.Repeat([]byte{byte(i)}, i*7))))
		want = append(want, p)
		lsn := appendAck(t, l, RecPublish, p)
		if lsn != uint64(i+1) {
			t.Fatalf("append %d got LSN %d", i, lsn)
		}
	}
	appendAck(t, l, RecDelete, []byte("gone"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs2 := openT(t, path, Options{})
	defer l2.Close()
	if len(recs2) != 21 {
		t.Fatalf("replayed %d records, want 21", len(recs2))
	}
	for i, p := range want {
		r := recs2[i]
		if r.LSN != uint64(i+1) || r.Type != RecPublish || !bytes.Equal(r.Payload, p) {
			t.Fatalf("record %d = {%d %d %q}", i, r.LSN, r.Type, r.Payload)
		}
	}
	if last := recs2[20]; last.Type != RecDelete || string(last.Payload) != "gone" {
		t.Fatalf("delete record came back as {%d %q}", last.Type, last.Payload)
	}
	// Appends continue from the replayed LSN.
	if lsn := appendAck(t, l2, RecPublish, []byte("more")); lsn != 22 {
		t.Fatalf("post-replay append got LSN %d, want 22", lsn)
	}
}

// TestTornTailTruncated: a crash mid-append (raw bytes chopped at every
// possible boundary inside the last record) must replay every earlier
// record and truncate the tail, never error.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName)
	l, _ := openT(t, path, Options{})
	for i := 0; i < 3; i++ {
		appendAck(t, l, RecPublish, []byte(fmt.Sprintf("rec-%d", i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := len("rec-2") + frameOverhead
	for cut := 1; cut < lastFrame; cut++ {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.riot", cut))
		if err := os.WriteFile(torn, whole[:len(whole)-cut], 0o666); err != nil {
			t.Fatal(err)
		}
		l2, recs := openT(t, torn, Options{})
		if len(recs) != 2 {
			t.Fatalf("cut=%d: replayed %d records, want 2", cut, len(recs))
		}
		if st := l2.Stats(); st.TruncatedBytes == 0 {
			t.Fatalf("cut=%d: no truncation recorded", cut)
		}
		// The truncated log must accept appends at the right LSN.
		if lsn := appendAck(t, l2, RecPublish, []byte("after")); lsn != 3 {
			t.Fatalf("cut=%d: append after truncation got LSN %d, want 3", cut, lsn)
		}
		l2.Close()
	}
}

// TestCorruptMidRecordCutsTail: a flipped byte inside a record drops it
// and everything after (the tail is suspect once continuity breaks).
func TestCorruptMidRecordCutsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	l, _ := openT(t, path, Options{})
	appendAck(t, l, RecPublish, []byte("first-record"))
	appendAck(t, l, RecPublish, []byte("second-record"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+10] ^= 0xff // inside the first record
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	l2, recs := openT(t, path, Options{})
	defer l2.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records after first-record corruption, want 0", len(recs))
	}
}

// TestBadHeaderRejected: unlike a torn tail, an unreadable header is a
// hard error — the log cannot be safely continued.
func TestBadHeaderRejected(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"short":     []byte("RIOT"),
		"bad-magic": []byte("NOTAWAL!12345678"),
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, content, 0o666); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(path, Options{}); err == nil {
			t.Fatalf("%s: Open accepted a log with a damaged header", name)
		}
	}
}

// TestInjectorShortWrite: the fault injector chops the Nth append; the
// append fails, the log wedges, and reopening finds exactly the records
// before the fault (the torn bytes are truncated).
func TestInjectorShortWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	inj := func(i int, frame []byte) ([]byte, error) {
		if i == 2 {
			return frame[:len(frame)/2], nil
		}
		return frame, nil
	}
	l, _ := openT(t, path, Options{Injector: inj})
	appendAck(t, l, RecPublish, []byte("zero"))
	appendAck(t, l, RecPublish, []byte("one"))
	if _, _, err := l.Append(RecPublish, []byte("two")); err == nil {
		t.Fatal("short-written append reported success")
	}
	// The log is wedged: later appends fail too.
	if _, _, err := l.Append(RecPublish, []byte("three")); err == nil {
		t.Fatal("append after injected fault reported success")
	}
	l.Close()

	l2, recs := openT(t, path, Options{})
	defer l2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want the 2 acknowledged ones", len(recs))
	}
	if st := l2.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("torn bytes from the injected fault were not truncated")
	}
}

// TestInjectorFailedAppend: an injector error (failed device) fails the
// append without corrupting the file.
func TestInjectorFailedAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	inj := func(i int, frame []byte) ([]byte, error) {
		if i == 1 {
			return nil, fmt.Errorf("simulated EIO")
		}
		return frame, nil
	}
	l, _ := openT(t, path, Options{Injector: inj})
	appendAck(t, l, RecPublish, []byte("fine"))
	if _, _, err := l.Append(RecPublish, []byte("doomed")); err == nil {
		t.Fatal("append survived an injected device error")
	}
	l.Close()
	l2, recs := openT(t, path, Options{})
	defer l2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "fine" {
		t.Fatalf("replay after failed append: %d records", len(recs))
	}
}

// TestGroupCommitBatchesFsyncs: many goroutines appending with
// ModeAlways must complete with far fewer fsyncs than appends.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	l, _ := openT(t, path, Options{Mode: ModeAlways})
	defer l.Close()
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, ack, err := l.Append(RecPublish, []byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Error(err)
					return
				}
				if err := ack(); err != nil {
					t.Errorf("lsn %d: %v", lsn, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*per {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*per)
	}
	if st.DurableLSN != uint64(writers*per) {
		t.Fatalf("durable LSN = %d, want %d", st.DurableLSN, writers*per)
	}
	if st.Fsyncs >= st.Appends {
		t.Fatalf("no batching: %d fsyncs for %d appends", st.Fsyncs, st.Appends)
	}
	if st.GroupedAcks != st.Appends {
		t.Fatalf("grouped acks = %d, want %d", st.GroupedAcks, st.Appends)
	}
}

// TestIntervalModeFlushes: appends ack immediately and the background
// timer makes them durable within a few intervals.
func TestIntervalModeFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	l, _ := openT(t, path, Options{Mode: ModeInterval, Interval: 5 * time.Millisecond})
	defer l.Close()
	lsn, ack, err := l.Append(RecPublish, []byte("timed"))
	if err != nil {
		t.Fatal(err)
	}
	if ack != nil {
		t.Fatal("interval mode returned a blocking ack")
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().DurableLSN < lsn {
		if time.Now().After(deadline) {
			t.Fatalf("record %d never became durable", lsn)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRotate: after rotation the file is empty, replay returns nothing,
// and LSNs keep rising so checkpoint bookkeeping stays monotonic.
func TestRotate(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	l, _ := openT(t, path, Options{})
	for i := 0; i < 5; i++ {
		appendAck(t, l, RecPublish, []byte("pre-rotate"))
	}
	if err := l.Rotate(l.LastLSN()); err != nil {
		t.Fatal(err)
	}
	if lsn := appendAck(t, l, RecPublish, []byte("post-rotate")); lsn != 6 {
		t.Fatalf("post-rotation LSN = %d, want 6", lsn)
	}
	if st := l.Stats(); st.Rotations != 1 {
		t.Fatalf("rotations = %d", st.Rotations)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, recs := openT(t, path, Options{})
	defer l2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "post-rotate" || recs[0].LSN != 6 {
		t.Fatalf("replay after rotation: %d records %+v", len(recs), recs)
	}
	// Rotating below the last assigned LSN would drop records.
	if err := l2.Rotate(3); err == nil {
		t.Fatal("Rotate accepted an LSN that drops records")
	}
}

// TestCloseIdempotent: double Close is fine, appends after Close fail.
func TestCloseIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	l, _ := openT(t, path, Options{})
	appendAck(t, l, RecPublish, []byte("x"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(RecPublish, nil); err == nil {
		t.Fatal("Append on a closed log succeeded")
	}
}
