package sparse

import (
	"testing"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
)

func newPool(blockElems, frames int) *buffer.Pool {
	return buffer.New(disk.NewDevice(blockElems), frames)
}

// xorshift is the deterministic generator the property tests draw from.
type xorshift uint64

func (x *xorshift) next() float64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return float64(*x%1000003) / 1000003
}

// genMatrix fills an n×n dense matrix with ~density fraction nonzero.
func genMatrix(t *testing.T, pool *buffer.Pool, name string, n int64, density float64, seed uint64) *array.Matrix {
	t.Helper()
	rng := xorshift(seed*2654435761 + 1)
	m, err := array.NewMatrix(pool, name, n, n, array.Options{Shape: array.SquareTiles})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fill(func(i, j int64) float64 {
		if rng.next() < density {
			return 1 + rng.next()
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

func densities() []float64 { return []float64{0, 0.01, 0.1, 1.0} }

func TestFromDenseRoundTrip(t *testing.T) {
	for _, d := range densities() {
		pool := newPool(64, 32)
		src := genMatrix(t, pool, "src", 33, d, 7)
		sm, err := FromDense(pool, "sm", src)
		if err != nil {
			t.Fatalf("density %g: %v", d, err)
		}
		if sm.Kind() != array.Sparse {
			t.Fatalf("Kind = %v, want sparse", sm.Kind())
		}
		back, err := sm.ToDense(pool, "back")
		if err != nil {
			t.Fatal(err)
		}
		var nnz int64
		for i := int64(0); i < 33; i++ {
			for j := int64(0); j < 33; j++ {
				want, err := src.At(i, j)
				if err != nil {
					t.Fatal(err)
				}
				if want != 0 {
					nnz++
				}
				got, err := back.At(i, j)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("density %g: round-trip (%d,%d) = %g, want %g", d, i, j, got, want)
				}
				at, err := sm.At(i, j)
				if err != nil {
					t.Fatal(err)
				}
				if at != want {
					t.Fatalf("density %g: sparse At(%d,%d) = %g, want %g", d, i, j, at, want)
				}
			}
		}
		if sm.NNZ() != nnz {
			t.Fatalf("density %g: NNZ = %d, want %d", d, sm.NNZ(), nnz)
		}
	}
}

// TestEmptyTilesCostNothing pins the core storage claim: an all-zero
// matrix occupies zero payload blocks and reads back with zero device
// I/O.
func TestEmptyTilesCostNothing(t *testing.T) {
	pool := newPool(64, 16)
	sm, err := New(pool, "z", 100, 100, array.Options{Shape: array.SquareTiles},
		func(i, j int64) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if sm.Blocks() != 0 || sm.NNZ() != 0 {
		t.Fatalf("all-zero matrix stores %d blocks, %d nnz", sm.Blocks(), sm.NNZ())
	}
	pool.Device().ResetStats()
	for i := int64(0); i < 100; i += 7 {
		v, err := sm.At(i, i)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			t.Fatalf("At(%d,%d) = %g", i, i, v)
		}
	}
	scratch := make([]float64, 8*8)
	if err := sm.ReadTile(0, 0, scratch); err != nil {
		t.Fatal(err)
	}
	if st := pool.Device().Stats(); st.TotalBlocks() != 0 {
		t.Fatalf("reading an all-zero matrix cost %d block I/Os", st.TotalBlocks())
	}
}

// TestDenseFallbackTile drives a tile past the compressed-format
// capacity ((B-1)/2 nonzeros) so the dense-payload branch is exercised.
func TestDenseFallbackTile(t *testing.T) {
	pool := newPool(64, 16) // 8×8 tiles, compressed capacity 31 nonzeros
	src := genMatrix(t, pool, "full", 8, 1.0, 3)
	sm, err := FromDense(pool, "sfull", src)
	if err != nil {
		t.Fatal(err)
	}
	if sm.TileNNZ(0, 0) != 64 {
		t.Fatalf("tile nnz = %d, want 64", sm.TileNNZ(0, 0))
	}
	if sm.Blocks() != 1 {
		t.Fatalf("dense-fallback tile uses %d blocks, want 1", sm.Blocks())
	}
	for i := int64(0); i < 8; i++ {
		for j := int64(0); j < 8; j++ {
			want, _ := src.At(i, j)
			got, err := sm.At(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("fallback At(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestCloneAndAlloc(t *testing.T) {
	pool := newPool(64, 32)
	src := genMatrix(t, pool, "src", 40, 0.05, 11)
	sm, err := FromDense(pool, "sm", src)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Clone(pool, "clone", sm)
	if err != nil {
		t.Fatal(err)
	}
	if cl.NNZ() != sm.NNZ() || cl.Blocks() != sm.Blocks() {
		t.Fatalf("clone nnz/blocks = %d/%d, want %d/%d", cl.NNZ(), cl.Blocks(), sm.NNZ(), sm.Blocks())
	}
	// Clone's extent is contiguous, in BlockIDs order.
	ids := cl.BlockIDs()
	for k := 1; k < len(ids); k++ {
		if ids[k] != ids[k-1]+1 {
			t.Fatalf("clone blocks not contiguous: %v", ids)
		}
	}
	for i := int64(0); i < 40; i += 3 {
		for j := int64(0); j < 40; j += 3 {
			want, _ := sm.At(i, j)
			got, err := cl.At(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("clone At(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestZeroDimMatrix(t *testing.T) {
	pool := newPool(64, 8)
	for _, dims := range [][2]int64{{0, 0}, {0, 5}, {5, 0}} {
		sm, err := New(pool, "z", dims[0], dims[1], array.Options{Shape: array.SquareTiles},
			func(i, j int64) float64 { return 1 })
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if sm.NNZ() != 0 || sm.Blocks() != 0 {
			t.Fatalf("%v: nnz=%d blocks=%d", dims, sm.NNZ(), sm.Blocks())
		}
		d, err := sm.ToDense(pool, "zd")
		if err != nil {
			t.Fatal(err)
		}
		if d.Rows() != dims[0] || d.Cols() != dims[1] {
			t.Fatalf("%v: dense dims %d×%d", dims, d.Rows(), d.Cols())
		}
		sm.Free()
		d.Free()
	}
}

func TestSparseVectorRoundTrip(t *testing.T) {
	for _, d := range densities() {
		pool := newPool(64, 16)
		rng := xorshift(99)
		n := int64(1000)
		want := make([]float64, n)
		for i := range want {
			if rng.next() < d {
				want[i] = 1 + rng.next()
			}
		}
		sv, err := NewVector(pool, "sv", n, func(lo, hi int64, buf []float64) error {
			copy(buf, want[lo:hi])
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		if err := sv.ReadRange(0, n, got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("density %g: [%d] = %g, want %g", d, i, got[i], want[i])
			}
		}
		// Unaligned sub-range.
		sub := make([]float64, 131)
		if err := sv.ReadRange(37, 168, sub); err != nil {
			t.Fatal(err)
		}
		for i := range sub {
			if sub[i] != want[37+int64(i)] {
				t.Fatalf("density %g: sub[%d] = %g, want %g", d, i, sub[i], want[37+int64(i)])
			}
		}
		dv, err := sv.ToDense(pool, "dv")
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < n; i += 13 {
			v, err := dv.At(i)
			if err != nil {
				t.Fatal(err)
			}
			if v != want[i] {
				t.Fatalf("density %g: dense [%d] = %g, want %g", d, i, v, want[i])
			}
		}
		cl, err := CloneVector(pool, "cl", sv)
		if err != nil {
			t.Fatal(err)
		}
		if cl.NNZ() != sv.NNZ() {
			t.Fatalf("clone nnz %d want %d", cl.NNZ(), sv.NNZ())
		}
	}
}

// TestVectorRangeEmpty checks the directory answers range-emptiness
// queries without I/O, on chunk-aligned and unaligned bounds.
func TestVectorRangeEmpty(t *testing.T) {
	pool := newPool(64, 16)
	n := int64(64 * 10)
	// Nonzeros only in chunk 3 and chunk 7.
	sv, err := NewVector(pool, "sv", n, func(lo, hi int64, buf []float64) error {
		chunk := lo / 64
		if chunk == 3 || chunk == 7 {
			buf[5] = 42
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	pool.Device().ResetStats()
	cases := []struct {
		lo, hi int64
		empty  bool
	}{
		{0, 64 * 3, true},
		{0, 64*3 + 1, false},
		{64 * 4, 64 * 7, true},
		{64*3 + 10, 64 * 4, false},
		{64 * 8, n, true},
		{0, 0, true},
	}
	for _, c := range cases {
		if got := sv.RangeEmpty(c.lo, c.hi); got != c.empty {
			t.Fatalf("RangeEmpty(%d,%d) = %v, want %v", c.lo, c.hi, got, c.empty)
		}
	}
	if st := pool.Device().Stats(); st.TotalBlocks() != 0 {
		t.Fatalf("RangeEmpty cost %d block I/Os", st.TotalBlocks())
	}
}
