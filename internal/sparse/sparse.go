// Package sparse implements RIOT's tile-compressed sparse array kind.
// The LAB abstraction of the paper deliberately leaves the tile payload
// format open; this package supplies a second payload format beside the
// dense tiles of internal/array, with the same tile geometry and the
// same buffer-pool discipline, so every layer above storage (kernels,
// executor, planner, catalog, language) can treat sparsity as a property
// of the array rather than a separate type system.
//
// # Tile format
//
// A sparse matrix partitions into the same tileR×tileC grid its dense
// twin would use (array.TileDimsFor). Each tile is stored in one of
// three ways, chosen per tile by its nonzero count:
//
//   - nnz == 0: the tile occupies no block at all. The in-memory tile
//     directory records it as empty, and every read path (kernels,
//     At, ReadTile) answers from the directory with zero I/O.
//   - 1+2·nnz <= B: one compressed block — payload[0] holds nnz,
//     payload[1..nnz] the in-tile row-major element indexes (exact
//     small integers stored as float64), payload[1+nnz..1+2·nnz] the
//     values.
//   - otherwise: one dense block holding the tile row-major (a tile
//     never exceeds one block, so the fallback caps a pathological
//     tile's cost at exactly the dense format's).
//
// The directory (per-tile nnz and block placement) lives in memory and
// is persisted by the catalog; nnz decides the payload format, so the
// codec needs no in-block flag for the dense fallback.
//
// Sparse arrays are immutable once built: kernels producing sparse
// output assemble it through a Builder, tile by tile in row-major tile
// order, which keeps block allocation deterministic.
package sparse

import (
	"fmt"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
)

// noBlock marks an all-zero tile (or chunk) in a directory.
const noBlock = disk.BlockID(-1)

// Matrix is a rows×cols float64 matrix stored as tile-compressed sparse
// payloads; see the package comment for the format. All I/O goes through
// the buffer pool, so sparse kernels honor the same memory budget dense
// ones do.
type Matrix struct {
	pool  *buffer.Pool
	name  string
	rows  int64
	cols  int64
	tileR int
	tileC int
	gridR int
	gridC int
	lin   array.Linearization
	// dir maps row-major tile index to the block holding the tile's
	// payload, noBlock for all-zero tiles.
	dir []disk.BlockID
	// tileNNZ is the per-tile nonzero count; it selects the payload
	// format on both the encode and decode sides.
	tileNNZ []int32
	nnz     int64
}

// Rows returns the row count.
func (m *Matrix) Rows() int64 { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int64 { return m.cols }

// Name returns the owner name used for disk accounting.
func (m *Matrix) Name() string { return m.name }

// Pool returns the buffer pool the matrix is accessed through.
func (m *Matrix) Pool() *buffer.Pool { return m.pool }

// Kind reports the payload format: always array.Sparse for this type.
func (m *Matrix) Kind() array.Kind { return array.Sparse }

// TileDims returns the tile height and width in elements.
func (m *Matrix) TileDims() (tr, tc int) { return m.tileR, m.tileC }

// GridDims returns the tile-grid dimensions.
func (m *Matrix) GridDims() (gr, gc int) { return m.gridR, m.gridC }

// Lin returns the linearization recorded at construction. Sparse
// payloads are compacted in row-major tile order regardless; the value
// is echoed into dense conversions so a round trip preserves layout.
func (m *Matrix) Lin() array.Linearization { return m.lin }

// Shape returns the tile shape, recovered from the tile dimensions.
func (m *Matrix) Shape() array.TileShape {
	switch {
	case m.tileR == 1 && m.tileC != 1:
		return array.RowTiles
	case m.tileC == 1 && m.tileR != 1:
		return array.ColTiles
	}
	return array.SquareTiles
}

// NNZ returns the stored nonzero count.
func (m *Matrix) NNZ() int64 { return m.nnz }

// Density returns nnz / (rows·cols), 0 for degenerate shapes.
func (m *Matrix) Density() float64 {
	if m.rows == 0 || m.cols == 0 {
		return 0
	}
	return float64(m.nnz) / (float64(m.rows) * float64(m.cols))
}

// Blocks returns the number of blocks the matrix occupies on the device:
// one per non-empty tile. (Contrast array.Matrix.Blocks, which counts
// the whole grid.)
func (m *Matrix) Blocks() int {
	n := 0
	for _, b := range m.dir {
		if b != noBlock {
			n++
		}
	}
	return n
}

// GridTiles returns the total tile count of the grid.
func (m *Matrix) GridTiles() int { return m.gridR * m.gridC }

// TileNNZ returns the nonzero count of tile (ti, tj).
func (m *Matrix) TileNNZ(ti, tj int) int { return int(m.tileNNZ[ti*m.gridC+tj]) }

// TileEmpty reports whether tile (ti, tj) is all-zero (and so costs no
// I/O to read).
func (m *Matrix) TileEmpty(ti, tj int) bool { return m.dir[ti*m.gridC+tj] == noBlock }

// BlockIDs returns the blocks backing non-empty tiles, in row-major tile
// order — the order the catalog serializes payloads in.
func (m *Matrix) BlockIDs() []disk.BlockID {
	out := make([]disk.BlockID, 0, len(m.dir))
	for _, b := range m.dir {
		if b != noBlock {
			out = append(out, b)
		}
	}
	return out
}

// TileNNZs returns a copy of the per-tile nonzero directory in row-major
// tile order (the catalog's metadata page).
func (m *Matrix) TileNNZs() []int32 {
	out := make([]int32, len(m.tileNNZ))
	copy(out, m.tileNNZ)
	return out
}

// TileBounds returns the global element rectangle tile (ti, tj) covers:
// rows [rowLo, rowHi) × cols [colLo, colHi), clipped to the matrix edge.
func (m *Matrix) TileBounds(ti, tj int) (rowLo, rowHi, colLo, colHi int64) {
	rowLo = int64(ti) * int64(m.tileR)
	colLo = int64(tj) * int64(m.tileC)
	rowHi = min(rowLo+int64(m.tileR), m.rows)
	colHi = min(colLo+int64(m.tileC), m.cols)
	return
}

func (m *Matrix) checkTile(ti, tj int) error {
	if ti < 0 || ti >= m.gridR || tj < 0 || tj >= m.gridC {
		return fmt.Errorf("sparse: tile (%d,%d) outside %d×%d grid of %q", ti, tj, m.gridR, m.gridC, m.name)
	}
	return nil
}

// ReadTile decompresses tile (ti, tj) into dst, which must hold
// tileR·tileC elements (row-major, zero beyond the matrix edge). Empty
// tiles are answered from the directory with no I/O.
func (m *Matrix) ReadTile(ti, tj int, dst []float64) error {
	if err := m.checkTile(ti, tj); err != nil {
		return err
	}
	if len(dst) != m.tileR*m.tileC {
		return fmt.Errorf("sparse: ReadTile buffer has %d elems, want %d", len(dst), m.tileR*m.tileC)
	}
	for i := range dst {
		dst[i] = 0
	}
	t := ti*m.gridC + tj
	if m.dir[t] == noBlock {
		return nil
	}
	f, err := m.pool.Pin(m.dir[t])
	if err != nil {
		return err
	}
	decodePayload(f.Data, int(m.tileNNZ[t]), dst)
	m.pool.Unpin(f)
	return nil
}

// IterTile calls fn(r, c, v) for every stored nonzero of tile (ti, tj),
// with r and c local to the tile, in row-major order. Dense-format tiles
// skip their explicit zeros, so fn sees only nonzeros either way. Empty
// tiles return immediately with no I/O.
func (m *Matrix) IterTile(ti, tj int, fn func(r, c int, v float64) error) error {
	if err := m.checkTile(ti, tj); err != nil {
		return err
	}
	t := ti*m.gridC + tj
	if m.dir[t] == noBlock {
		return nil
	}
	f, err := m.pool.Pin(m.dir[t])
	if err != nil {
		return err
	}
	defer m.pool.Unpin(f)
	nnz := int(m.tileNNZ[t])
	if compressedFits(nnz, len(f.Data)) {
		for k := 0; k < nnz; k++ {
			idx := int(f.Data[1+k])
			if err := fn(idx/m.tileC, idx%m.tileC, f.Data[1+nnz+k]); err != nil {
				return err
			}
		}
		return nil
	}
	for idx := 0; idx < m.tileR*m.tileC && idx < len(f.Data); idx++ {
		if v := f.Data[idx]; v != 0 {
			if err := fn(idx/m.tileC, idx%m.tileC, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// At reads one element through the buffer pool (empty tiles cost no
// I/O).
func (m *Matrix) At(i, j int64) (float64, error) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		return 0, fmt.Errorf("sparse: index (%d,%d) outside %d×%d matrix %q", i, j, m.rows, m.cols, m.name)
	}
	ti, tj := int(i)/m.tileR, int(j)/m.tileC
	t := ti*m.gridC + tj
	if m.dir[t] == noBlock {
		return 0, nil
	}
	f, err := m.pool.Pin(m.dir[t])
	if err != nil {
		return 0, err
	}
	defer m.pool.Unpin(f)
	r := int(i) - ti*m.tileR
	c := int(j) - tj*m.tileC
	idx := r*m.tileC + c
	nnz := int(m.tileNNZ[t])
	if !compressedFits(nnz, len(f.Data)) {
		return f.Data[idx], nil
	}
	for k := 0; k < nnz; k++ {
		if int(f.Data[1+k]) == idx {
			return f.Data[1+nnz+k], nil
		}
	}
	return 0, nil
}

// ToDense materializes the matrix as a dense array.Matrix named name,
// with the same tile shape and linearization. Empty tiles are written
// without being read.
func (m *Matrix) ToDense(pool *buffer.Pool, name string) (*array.Matrix, error) {
	d, err := array.NewMatrix(pool, name, m.rows, m.cols, array.Options{Shape: m.Shape(), Lin: m.lin})
	if err != nil {
		return nil, err
	}
	scratch := make([]float64, m.tileR*m.tileC)
	for ti := 0; ti < m.gridR; ti++ {
		for tj := 0; tj < m.gridC; tj++ {
			if err := m.ReadTile(ti, tj, scratch); err != nil {
				return nil, err
			}
			t, err := d.PinTileNew(ti, tj)
			if err != nil {
				return nil, err
			}
			for i := t.RowLo; i < t.RowHi; i++ {
				for j := t.ColLo; j < t.ColHi; j++ {
					t.Set(i, j, scratch[int(i-t.RowLo)*m.tileC+int(j-t.ColLo)])
				}
			}
			t.Release()
		}
	}
	return d, pool.FlushAll()
}

// Free drops the matrix's resident blocks and releases its disk extent.
func (m *Matrix) Free() {
	for _, b := range m.dir {
		if b != noBlock {
			m.pool.Invalidate(b)
		}
	}
	m.pool.Device().Free(m.name)
}

// FromDense converts a dense matrix into a sparse one named name on the
// same pool, preserving tile geometry. All-zero tiles of src become
// empty (block-free) tiles of the result.
func FromDense(pool *buffer.Pool, name string, src *array.Matrix) (*Matrix, error) {
	b, err := NewBuilder(pool, name, src.Rows(), src.Cols(),
		array.Options{Shape: src.Shape(), Lin: src.Lin()})
	if err != nil {
		return nil, err
	}
	gr, gc := src.GridDims()
	tr, tc := src.TileDims()
	scratch := make([]float64, tr*tc)
	for ti := 0; ti < gr; ti++ {
		for tj := 0; tj < gc; tj++ {
			t, err := src.PinTile(ti, tj)
			if err != nil {
				b.Abandon()
				return nil, err
			}
			for i := range scratch {
				scratch[i] = 0
			}
			for i := t.RowLo; i < t.RowHi; i++ {
				for j := t.ColLo; j < t.ColHi; j++ {
					scratch[int(i-t.RowLo)*tc+int(j-t.ColLo)] = t.At(i, j)
				}
			}
			t.Release()
			if err := b.SetTile(ti, tj, scratch); err != nil {
				b.Abandon()
				return nil, err
			}
		}
	}
	return b.Finish()
}

// New builds a sparse matrix directly from a generator, tile by tile,
// without materializing a dense intermediate.
func New(pool *buffer.Pool, name string, rows, cols int64, opts array.Options, gen func(i, j int64) float64) (*Matrix, error) {
	b, err := NewBuilder(pool, name, rows, cols, opts)
	if err != nil {
		return nil, err
	}
	m := b.m
	scratch := make([]float64, m.tileR*m.tileC)
	for ti := 0; ti < m.gridR; ti++ {
		for tj := 0; tj < m.gridC; tj++ {
			rowLo, rowHi, colLo, colHi := m.TileBounds(ti, tj)
			for i := range scratch {
				scratch[i] = 0
			}
			for i := rowLo; i < rowHi; i++ {
				for j := colLo; j < colHi; j++ {
					scratch[int(i-rowLo)*m.tileC+int(j-colLo)] = gen(i, j)
				}
			}
			if err := b.SetTile(ti, tj, scratch); err != nil {
				b.Abandon()
				return nil, err
			}
		}
	}
	return b.Finish()
}

// Clone copies src into a fresh sparse matrix named name, identical in
// geometry and directory, with its non-empty blocks in one contiguous
// extent (the catalog's publish path). The copy goes through the pool so
// dirty frames are captured.
func Clone(pool *buffer.Pool, name string, src *Matrix) (*Matrix, error) {
	dst, err := Alloc(pool, name, src.rows, src.cols,
		array.Options{Shape: src.Shape(), Lin: src.lin}, src.TileNNZs())
	if err != nil {
		return nil, err
	}
	for t := range src.dir {
		if src.dir[t] == noBlock {
			continue
		}
		sf, err := pool.Pin(src.dir[t])
		if err != nil {
			dst.Free()
			return nil, err
		}
		df, err := pool.PinNew(dst.dir[t])
		if err != nil {
			pool.Unpin(sf)
			dst.Free()
			return nil, err
		}
		copy(df.Data, sf.Data)
		df.MarkDirty()
		pool.Unpin(df)
		pool.Unpin(sf)
	}
	return dst, nil
}

// Alloc creates a sparse matrix shell from a per-tile nonzero directory:
// geometry and directory are final, and one contiguous extent is
// allocated for the non-empty tiles (row-major tile order, matching
// BlockIDs), but the payloads are uninitialized. Callers fill them
// through the pool (Clone) or import them below it (the catalog's
// restore path).
func Alloc(pool *buffer.Pool, name string, rows, cols int64, opts array.Options, tileNNZ []int32) (*Matrix, error) {
	m, err := newShell(pool, name, rows, cols, opts)
	if err != nil {
		return nil, err
	}
	if len(tileNNZ) != m.gridR*m.gridC {
		return nil, fmt.Errorf("sparse: directory has %d tiles, geometry wants %d", len(tileNNZ), m.gridR*m.gridC)
	}
	stored := 0
	for _, c := range tileNNZ {
		if c < 0 || int64(c) > int64(m.tileR)*int64(m.tileC) {
			return nil, fmt.Errorf("sparse: implausible tile nnz %d for %d×%d tiles", c, m.tileR, m.tileC)
		}
		if c > 0 {
			stored++
		}
	}
	copy(m.tileNNZ, tileNNZ)
	if stored > 0 {
		base := pool.Device().Alloc(name, stored)
		k := disk.BlockID(0)
		for t, c := range tileNNZ {
			if c > 0 {
				m.dir[t] = base + k
				k++
			}
			m.nnz += int64(c)
		}
	} else {
		// Own the name even with nothing stored, so Free stays symmetric.
		pool.Device().Alloc(name, 0)
	}
	return m, nil
}

// newShell builds the geometry of a sparse matrix with an all-empty
// directory and no storage.
func newShell(pool *buffer.Pool, name string, rows, cols int64, opts array.Options) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: invalid dimensions %d×%d", rows, cols)
	}
	tr, tc, err := array.TileDimsFor(pool.Device().BlockElems(), opts.Shape)
	if err != nil {
		return nil, err
	}
	m := &Matrix{
		pool:  pool,
		name:  name,
		rows:  rows,
		cols:  cols,
		tileR: tr,
		tileC: tc,
		gridR: int((rows + int64(tr) - 1) / int64(tr)),
		gridC: int((cols + int64(tc) - 1) / int64(tc)),
		lin:   opts.Lin,
	}
	nt := m.gridR * m.gridC
	m.dir = make([]disk.BlockID, nt)
	for i := range m.dir {
		m.dir[i] = noBlock
	}
	m.tileNNZ = make([]int32, nt)
	return m, nil
}

// Builder assembles a sparse matrix tile by tile. Tiles should be set in
// row-major tile order (the order every kernel produces them in), which
// keeps the block layout deterministic; unset tiles are empty. A tile
// may be set at most once.
type Builder struct {
	m        *Matrix
	finished bool
}

// NewBuilder starts building a rows×cols sparse matrix named name.
func NewBuilder(pool *buffer.Pool, name string, rows, cols int64, opts array.Options) (*Builder, error) {
	m, err := newShell(pool, name, rows, cols, opts)
	if err != nil {
		return nil, err
	}
	// Register the owner up front so Abandon/Free work even if no tile
	// is ever stored.
	pool.Device().Alloc(name, 0)
	return &Builder{m: m}, nil
}

// SetTile stores tile (ti, tj) from its dense row-major payload (length
// tileR·tileC, zero beyond the matrix edge). All-zero payloads record an
// empty tile and perform no I/O.
func (b *Builder) SetTile(ti, tj int, data []float64) error {
	m := b.m
	if b.finished {
		return fmt.Errorf("sparse: SetTile after Finish on %q", m.name)
	}
	if err := m.checkTile(ti, tj); err != nil {
		return err
	}
	if len(data) != m.tileR*m.tileC {
		return fmt.Errorf("sparse: SetTile payload has %d elems, want %d", len(data), m.tileR*m.tileC)
	}
	t := ti*m.gridC + tj
	if m.dir[t] != noBlock || m.tileNNZ[t] != 0 {
		return fmt.Errorf("sparse: tile (%d,%d) of %q set twice", ti, tj, m.name)
	}
	nnz := 0
	for _, v := range data {
		if v != 0 {
			nnz++
		}
	}
	if nnz == 0 {
		return nil
	}
	id := m.pool.Device().Alloc(m.name, 1)
	f, err := m.pool.PinNew(id)
	if err != nil {
		return err
	}
	encodePayload(f.Data, data, nnz)
	f.MarkDirty()
	m.pool.Unpin(f)
	m.dir[t] = id
	m.tileNNZ[t] = int32(nnz)
	m.nnz += int64(nnz)
	return nil
}

// Finish flushes the built tiles and returns the finished matrix.
func (b *Builder) Finish() (*Matrix, error) {
	if b.finished {
		return nil, fmt.Errorf("sparse: Finish called twice on %q", b.m.name)
	}
	b.finished = true
	if err := b.m.pool.FlushAll(); err != nil {
		return nil, err
	}
	return b.m, nil
}

// Abandon releases everything the builder stored; the matrix is never
// produced. Safe after any SetTile error.
func (b *Builder) Abandon() {
	if b.finished {
		return
	}
	b.finished = true
	b.m.Free()
}
