package sparse

import (
	"fmt"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
)

// Vector is a one-dimensional sparse array. It chunks exactly like a
// dense array.Vector — B consecutive elements per chunk — but all-zero
// chunks occupy no block, and non-empty chunks use the same
// (count, index[], value[]) payload codec as matrix tiles. The fused
// executor consults RangeEmpty to skip whole output ranges that are
// provably zero, which is where the union/intersection fusion rules of
// internal/scalarop pay off.
type Vector struct {
	pool     *buffer.Pool
	name     string
	n        int64
	dir      []disk.BlockID
	chunkNNZ []int32
	nnz      int64
}

// Len returns the number of elements.
func (v *Vector) Len() int64 { return v.n }

// Name returns the owner name used for disk accounting.
func (v *Vector) Name() string { return v.name }

// Pool returns the vector's buffer pool.
func (v *Vector) Pool() *buffer.Pool { return v.pool }

// Kind reports the payload format: always array.Sparse for this type.
func (v *Vector) Kind() array.Kind { return array.Sparse }

// NNZ returns the stored nonzero count.
func (v *Vector) NNZ() int64 { return v.nnz }

// Density returns nnz/n (0 for the empty vector).
func (v *Vector) Density() float64 {
	if v.n == 0 {
		return 0
	}
	return float64(v.nnz) / float64(v.n)
}

// Chunks returns the logical chunk count (empty chunks included).
func (v *Vector) Chunks() int { return len(v.dir) }

// Blocks returns the number of blocks the vector occupies: one per
// non-empty chunk.
func (v *Vector) Blocks() int {
	n := 0
	for _, b := range v.dir {
		if b != noBlock {
			n++
		}
	}
	return n
}

// ChunkNNZs returns a copy of the per-chunk nonzero directory.
func (v *Vector) ChunkNNZs() []int32 {
	out := make([]int32, len(v.chunkNNZ))
	copy(out, v.chunkNNZ)
	return out
}

// BlockIDs returns the blocks backing non-empty chunks, in chunk order.
func (v *Vector) BlockIDs() []disk.BlockID {
	out := make([]disk.BlockID, 0, len(v.dir))
	for _, b := range v.dir {
		if b != noBlock {
			out = append(out, b)
		}
	}
	return out
}

func (v *Vector) blockElems() int64 { return int64(v.pool.Device().BlockElems()) }

// RangeEmpty reports whether elements [lo, hi) are all zero, answered
// from the in-memory directory with no I/O. Out-of-range bounds are
// clipped.
func (v *Vector) RangeEmpty(lo, hi int64) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > v.n {
		hi = v.n
	}
	if lo >= hi {
		return true
	}
	b := v.blockElems()
	for k := lo / b; k <= (hi-1)/b; k++ {
		if v.dir[k] != noBlock {
			return false
		}
	}
	return true
}

// ReadRange decompresses elements [lo, hi) into buf (length hi-lo).
// Empty chunks contribute zeros with no I/O.
func (v *Vector) ReadRange(lo, hi int64, buf []float64) error {
	if lo < 0 || hi > v.n || lo > hi {
		return fmt.Errorf("sparse: range [%d,%d) outside vector %q of length %d", lo, hi, v.name, v.n)
	}
	if int64(len(buf)) != hi-lo {
		return fmt.Errorf("sparse: ReadRange buffer has %d elems, want %d", len(buf), hi-lo)
	}
	for i := range buf {
		buf[i] = 0
	}
	if lo == hi {
		return nil
	}
	b := v.blockElems()
	// scratch is only needed for chunks the range covers partially (at
	// most the first and last); fully covered chunks decode straight
	// into buf, so block-aligned scans — the fused executor's hot path
	// — allocate nothing.
	var scratch []float64
	for k := lo / b; k <= (hi-1)/b; k++ {
		if v.dir[k] == noBlock {
			continue
		}
		f, err := v.pool.Pin(v.dir[k])
		if err != nil {
			return err
		}
		chunkLo := k * b
		chunkHi := min(chunkLo+b, v.n)
		if lo <= chunkLo && chunkHi <= hi {
			decodePayload(f.Data, int(v.chunkNNZ[k]), buf[chunkLo-lo:chunkHi-lo])
			v.pool.Unpin(f)
			continue
		}
		if scratch == nil {
			scratch = make([]float64, b)
		}
		for i := range scratch[:chunkHi-chunkLo] {
			scratch[i] = 0
		}
		decodePayload(f.Data, int(v.chunkNNZ[k]), scratch[:chunkHi-chunkLo])
		v.pool.Unpin(f)
		from := max(lo, chunkLo)
		to := min(hi, chunkHi)
		copy(buf[from-lo:to-lo], scratch[from-chunkLo:to-chunkLo])
	}
	return nil
}

// At reads one element: empty chunks answer from the directory with no
// I/O, compressed chunks by an O(nnz) scan of the payload, dense-format
// chunks by direct indexing — no decode, no allocation (gathers call
// this once per index).
func (v *Vector) At(i int64) (float64, error) {
	if i < 0 || i >= v.n {
		return 0, fmt.Errorf("sparse: index %d outside vector %q of length %d", i, v.name, v.n)
	}
	b := v.blockElems()
	k := i / b
	if v.dir[k] == noBlock {
		return 0, nil
	}
	f, err := v.pool.Pin(v.dir[k])
	if err != nil {
		return 0, err
	}
	defer v.pool.Unpin(f)
	idx := int(i - k*b)
	nnz := int(v.chunkNNZ[k])
	if !compressedFits(nnz, len(f.Data)) {
		return f.Data[idx], nil
	}
	for j := 0; j < nnz; j++ {
		if int(f.Data[1+j]) == idx {
			return f.Data[1+nnz+j], nil
		}
	}
	return 0, nil
}

// PrefetchRange hints the pool's I/O scheduler at the non-empty blocks
// holding elements [lo, hi); empty chunks generate no hint. A no-op when
// the scheduler is disabled.
func (v *Vector) PrefetchRange(lo, hi int64) {
	if !v.pool.ReadaheadEnabled() {
		return
	}
	if lo < 0 {
		lo = 0
	}
	if hi > v.n {
		hi = v.n
	}
	if lo >= hi {
		return
	}
	b := v.blockElems()
	var ids []disk.BlockID
	for k := lo / b; k <= (hi-1)/b; k++ {
		if v.dir[k] != noBlock {
			ids = append(ids, v.dir[k])
		}
	}
	if len(ids) > 0 {
		v.pool.Prefetch(ids)
	}
}

// ToDense materializes the vector as a dense array.Vector named name.
func (v *Vector) ToDense(pool *buffer.Pool, name string) (*array.Vector, error) {
	d, err := array.NewVector(pool, name, v.n)
	if err != nil {
		return nil, err
	}
	b := v.blockElems()
	for k := 0; k < d.Blocks(); k++ {
		c, err := d.PinChunkNew(k)
		if err != nil {
			return nil, err
		}
		lo := int64(k) * b
		hi := min(lo+b, v.n)
		err = v.ReadRange(lo, hi, c.Data())
		c.MarkDirty()
		c.Release()
		if err != nil {
			return nil, err
		}
	}
	return d, pool.FlushAll()
}

// Free drops resident blocks and releases the vector's disk extent.
func (v *Vector) Free() {
	for _, b := range v.dir {
		if b != noBlock {
			v.pool.Invalidate(b)
		}
	}
	v.pool.Device().Free(v.name)
}

// FromDenseVector converts a dense vector into a sparse one named name.
func FromDenseVector(pool *buffer.Pool, name string, src *array.Vector) (*Vector, error) {
	return NewVector(pool, name, src.Len(), func(lo, hi int64, buf []float64) error {
		return readDenseRange(src, lo, hi, buf)
	})
}

// readDenseRange fills buf with src[lo:hi) chunk by chunk.
func readDenseRange(src *array.Vector, lo, hi int64, buf []float64) error {
	b := int64(src.Pool().Device().BlockElems())
	for lo < hi {
		c, err := src.PinChunk(int(lo / b))
		if err != nil {
			return err
		}
		n := min(hi, c.Hi) - lo
		copy(buf[:n], c.Data()[lo-c.Lo:lo-c.Lo+n])
		c.Release()
		buf = buf[n:]
		lo += n
	}
	return nil
}

// NewVector builds a sparse vector by asking read for each chunk's
// dense contents in order (read fills buf with elements [lo, hi)).
func NewVector(pool *buffer.Pool, name string, n int64, read func(lo, hi int64, buf []float64) error) (*Vector, error) {
	if n < 0 {
		return nil, fmt.Errorf("sparse: negative vector length %d", n)
	}
	b := int64(pool.Device().BlockElems())
	chunks := int((n + b - 1) / b)
	v := &Vector{
		pool:     pool,
		name:     name,
		n:        n,
		dir:      make([]disk.BlockID, chunks),
		chunkNNZ: make([]int32, chunks),
	}
	for i := range v.dir {
		v.dir[i] = noBlock
	}
	pool.Device().Alloc(name, 0) // own the name even if fully empty
	scratch := make([]float64, b)
	for k := 0; k < chunks; k++ {
		lo := int64(k) * b
		hi := min(lo+b, n)
		for i := range scratch {
			scratch[i] = 0
		}
		if err := read(lo, hi, scratch[:hi-lo]); err != nil {
			v.Free()
			return nil, err
		}
		nnz := 0
		for _, x := range scratch[:hi-lo] {
			if x != 0 {
				nnz++
			}
		}
		if nnz == 0 {
			continue
		}
		id := pool.Device().Alloc(name, 1)
		f, err := pool.PinNew(id)
		if err != nil {
			v.Free()
			return nil, err
		}
		encodePayload(f.Data, scratch[:hi-lo], nnz)
		f.MarkDirty()
		pool.Unpin(f)
		v.dir[k] = id
		v.chunkNNZ[k] = int32(nnz)
		v.nnz += int64(nnz)
	}
	return v, pool.FlushAll()
}

// CloneVector copies src into a fresh sparse vector named name with its
// non-empty blocks in one contiguous extent (the catalog's publish
// path).
func CloneVector(pool *buffer.Pool, name string, src *Vector) (*Vector, error) {
	dst, err := AllocVector(pool, name, src.n, src.ChunkNNZs())
	if err != nil {
		return nil, err
	}
	for k := range src.dir {
		if src.dir[k] == noBlock {
			continue
		}
		sf, err := pool.Pin(src.dir[k])
		if err != nil {
			dst.Free()
			return nil, err
		}
		df, err := pool.PinNew(dst.dir[k])
		if err != nil {
			pool.Unpin(sf)
			dst.Free()
			return nil, err
		}
		copy(df.Data, sf.Data)
		df.MarkDirty()
		pool.Unpin(df)
		pool.Unpin(sf)
	}
	return dst, nil
}

// AllocVector creates a sparse vector shell from a per-chunk nonzero
// directory, with one contiguous extent for the non-empty chunks (in
// chunk order, matching BlockIDs) and uninitialized payloads — the
// catalog's restore path.
func AllocVector(pool *buffer.Pool, name string, n int64, chunkNNZ []int32) (*Vector, error) {
	if n < 0 {
		return nil, fmt.Errorf("sparse: negative vector length %d", n)
	}
	b := int64(pool.Device().BlockElems())
	chunks := int((n + b - 1) / b)
	if len(chunkNNZ) != chunks {
		return nil, fmt.Errorf("sparse: directory has %d chunks, geometry wants %d", len(chunkNNZ), chunks)
	}
	v := &Vector{
		pool:     pool,
		name:     name,
		n:        n,
		dir:      make([]disk.BlockID, chunks),
		chunkNNZ: make([]int32, chunks),
	}
	stored := 0
	for _, c := range chunkNNZ {
		if c < 0 || int64(c) > b {
			return nil, fmt.Errorf("sparse: implausible chunk nnz %d for %d-elem chunks", c, b)
		}
		if c > 0 {
			stored++
		}
	}
	copy(v.chunkNNZ, chunkNNZ)
	for i := range v.dir {
		v.dir[i] = noBlock
	}
	if stored > 0 {
		base := pool.Device().Alloc(name, stored)
		k := disk.BlockID(0)
		for i, c := range chunkNNZ {
			if c > 0 {
				v.dir[i] = base + k
				k++
			}
			v.nnz += int64(c)
		}
	} else {
		pool.Device().Alloc(name, 0)
	}
	return v, nil
}
