package sparse

// The tile payload codec. A block either holds a compressed tile —
//
//	payload[0]            = nnz
//	payload[1 .. nnz]     = in-tile row-major element indexes
//	payload[1+nnz .. 2nnz]= values, in index order
//
// — or, when 1+2·nnz would overflow the block, the tile verbatim
// (row-major, same layout as a dense array tile). The boundary is a
// pure function of nnz and the block size, so the decoder needs no flag
// byte: the directory's nnz picks the branch. Indexes are exact small
// integers (< blockElems <= 2^24 in any plausible configuration), well
// inside float64's 2^53 integer range.

// compressedFits reports whether a tile with the given nonzero count
// uses the compressed format in a block of blockElems elements.
func compressedFits(nnz, blockElems int) bool { return 1+2*nnz <= blockElems }

// encodePayload writes tile (dense row-major, len <= len(dst)) into the
// block payload dst using the format its nnz selects. The caller has
// already counted nnz over tile.
func encodePayload(dst, tile []float64, nnz int) {
	if !compressedFits(nnz, len(dst)) {
		n := copy(dst, tile)
		for i := n; i < len(dst); i++ {
			dst[i] = 0
		}
		return
	}
	dst[0] = float64(nnz)
	k := 0
	for idx, v := range tile {
		if v != 0 {
			dst[1+k] = float64(idx)
			dst[1+nnz+k] = v
			k++
		}
	}
	for i := 1 + 2*nnz; i < len(dst); i++ {
		dst[i] = 0
	}
}

// decodePayload adds the payload's nonzeros into tile, which the caller
// has zero-filled (len(tile) is the logical tile size, <= len(src)).
func decodePayload(src []float64, nnz int, tile []float64) {
	if !compressedFits(nnz, len(src)) {
		copy(tile, src[:len(tile)])
		return
	}
	for k := 0; k < nnz; k++ {
		tile[int(src[1+k])] = src[1+nnz+k]
	}
}
