package riot

// The kill -9 crash-recovery harness: the acceptance test for the
// write-ahead log. TestCrashRecovery re-executes this test binary as a
// child process (TestMain diverts into crashChild when the environment
// variable is set), lets it publish randomized workloads against a
// WAL-backed database while journaling "try"/"ack" lines to plain
// files, SIGKILLs it at a random point, then reopens the database and
// checks the contract:
//
//   - every acknowledged publish is present with correct values
//     (durability),
//   - every present entry has correct values (atomicity — a torn WAL
//     record must never surface as a half-written array),
//   - every acknowledged delete stays deleted,
//   - unacknowledged operations may have landed or not, but nothing
//     in between.

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// crashChildEnv carries the database directory into the child process.
const crashChildEnv = "RIOT_CRASH_CHILD_DIR"

func TestMain(m *testing.M) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		crashChild(dir)
		os.Exit(0) // unreachable: the parent SIGKILLs us
	}
	os.Exit(m.Run())
}

// crashCfg is the machine the harness runs: small blocks so publishes
// span several WAL records' worth of payload quickly.
func crashCfg() Config {
	return Config{BlockElems: 64, MemElems: 1 << 15, WALSync: WALSyncAlways}
}

// arrLen is the deterministic length of the i-th published array.
func arrLen(i int) int64 { return 96 + int64(i%4)*64 }

// arrVal is the deterministic value of element idx of worker w's i-th
// array: it encodes (w, i, idx), so a restored array identifies exactly
// which publish it came from — any mixture of two publishes fails the
// check.
func arrVal(w, i int, idx int64) float64 { return float64(w)*1e7 + float64(i)*1000 + float64(idx) }

// crashChild runs the workload until killed: two concurrent publishers
// (so the WAL's group commit is on the crash path), each journaling
// every operation before ("try") and after ("ack") it completes, with
// periodic deletes and checkpoints thrown in so rotation and
// incremental checkpoints are also mid-flight when the SIGKILL lands.
func crashChild(dir string) {
	db, err := Open(dir, crashCfg())
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	done := make(chan struct{})
	for w := 0; w < 2; w++ {
		go crashWorker(db, dir, w)
	}
	<-done // forever: only SIGKILL ends the child
}

// crashWorker is one publisher loop. Its journal (acks-<w>.log) is
// written sequentially, one line per state change, so the parent can
// reconstruct exactly what was acknowledged before the kill.
func crashWorker(db *DB, dir string, w int) {
	j, err := os.Create(filepath.Join(dir, fmt.Sprintf("acks-%d.log", w)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	logln := func(format string, args ...any) {
		fmt.Fprintf(j, format+"\n", args...)
	}
	s, err := db.NewSession()
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	hot := fmt.Sprintf("w%d-hot", w)
	for i := 0; ; i++ {
		name := fmt.Sprintf("w%d-arr%04d", w, i)
		v, err := s.NewVector(arrLen(i), func(idx int64) float64 { return arrVal(w, i, idx) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			os.Exit(1)
		}
		logln("try pub %s %d", name, i)
		if err := s.Publish(name, v); err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			os.Exit(1)
		}
		logln("ack pub %s %d", name, i)

		hv, err := s.NewVector(64, func(idx int64) float64 { return float64(i) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			os.Exit(1)
		}
		logln("try hot %d", i)
		if err := s.Publish(hot, hv); err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			os.Exit(1)
		}
		logln("ack hot %d", i)

		if i >= 5 && i%10 == 5 {
			victim := fmt.Sprintf("w%d-arr%04d", w, i-5)
			logln("try del %s", victim)
			if _, err := db.Catalog().Delete(victim); err != nil {
				fmt.Fprintln(os.Stderr, "child:", err)
				os.Exit(1)
			}
			logln("ack del %s", victim)
		}
		if i%7 == 6 {
			if err := db.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "child:", err)
				os.Exit(1)
			}
		}
	}
}

// journal is the parsed per-worker operation log.
type journal struct {
	ackedPub   map[string]int // name -> i, acknowledged publishes
	triedPub   map[string]int // name -> i, attempted publishes
	ackedDel   map[string]bool
	triedDel   map[string]bool
	hotTried   int // highest i with "try hot"
	hotAcked   int // highest i with "ack hot"
	anyHotTry  bool
	anyHotAck  bool
	totalAcked int
}

// parseJournal tolerates a torn final line (the kill can land mid-write).
func parseJournal(t *testing.T, path string) journal {
	t.Helper()
	jn := journal{
		ackedPub: map[string]int{}, triedPub: map[string]int{},
		ackedDel: map[string]bool{}, triedDel: map[string]bool{},
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return jn // killed before the worker created its journal
	}
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		switch fields[0] + " " + fields[1] {
		case "try pub", "ack pub":
			if len(fields) != 4 {
				continue
			}
			i, err := strconv.Atoi(fields[3])
			if err != nil {
				continue
			}
			if fields[0] == "try" {
				jn.triedPub[fields[2]] = i
			} else {
				jn.ackedPub[fields[2]] = i
				jn.totalAcked++
			}
		case "try hot", "ack hot":
			if len(fields) != 3 {
				continue
			}
			i, err := strconv.Atoi(fields[2])
			if err != nil {
				continue
			}
			if fields[0] == "try" {
				jn.hotTried, jn.anyHotTry = i, true
			} else {
				jn.hotAcked, jn.anyHotAck = i, true
				jn.totalAcked++
			}
		case "try del":
			if len(fields) == 3 {
				jn.triedDel[fields[2]] = true
			}
		case "ack del":
			if len(fields) == 3 {
				jn.ackedDel[fields[2]] = true
				jn.totalAcked++
			}
		}
	}
	return jn
}

// checkArray verifies a restored array holds exactly publish (w, i).
func checkArray(t *testing.T, s *Session, name string, w, i int) {
	t.Helper()
	v, err := s.Lookup(name)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	vals, err := v.Values()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if int64(len(vals)) != arrLen(i) {
		t.Fatalf("%s: %d values, want %d", name, len(vals), arrLen(i))
	}
	for idx, got := range vals {
		if want := arrVal(w, i, int64(idx)); got != want {
			t.Fatalf("%s[%d] = %g, want %g (publish w=%d i=%d)", name, idx, got, want, w, i)
		}
	}
}

// TestCrashRecovery is the harness driver: see the file comment. CI runs
// it with -count=10 for ten independent randomized kill points.
func TestCrashRecovery(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL harness is POSIX-only")
	}
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("harness seed %d", seed)
	for attempt := 0; attempt < 5; attempt++ {
		dir := t.TempDir()
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// The randomized kill point: anywhere from "barely started" to
		// "dozens of publishes and a few checkpoints in".
		time.Sleep(time.Duration(20+rng.Intn(180)) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		cmd.Wait() // reaps the SIGKILLed child; its error is expected

		total := 0
		journals := make([]journal, 2)
		for w := range journals {
			journals[w] = parseJournal(t, filepath.Join(dir, fmt.Sprintf("acks-%d.log", w)))
			total += journals[w].totalAcked
		}
		if total == 0 {
			continue // killed before the first ack: nothing to verify, go again
		}
		verifyRecovery(t, dir, journals)
		return
	}
	t.Fatal("child never acknowledged an operation before the kill in 5 attempts")
}

// verifyRecovery reopens the database the child died in and checks the
// durability contract against the journals.
func verifyRecovery(t *testing.T, dir string, journals []journal) {
	t.Helper()
	db, err := Open(dir, crashCfg())
	if err != nil {
		t.Fatalf("reopen after kill -9: %v", err)
	}
	defer db.Close()
	s, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	present := make(map[string]bool)
	for _, name := range db.Names() {
		present[name] = true
	}
	for w, jn := range journals {
		// Durability: every acknowledged publish survives with correct
		// values, unless an acknowledged delete removed it.
		for name, i := range jn.ackedPub {
			if jn.ackedDel[name] {
				continue
			}
			if !present[name] {
				if jn.triedDel[name] {
					continue // an in-flight delete may have landed
				}
				t.Fatalf("acknowledged publish %s (i=%d) lost after kill -9", name, i)
			}
			checkArray(t, s, name, w, i)
		}
		// Acknowledged deletes stay deleted (arr names are never
		// republished).
		for name := range jn.ackedDel {
			if present[name] {
				t.Fatalf("acknowledged delete of %s undone by replay", name)
			}
		}
		// Atomicity: anything present must be a complete, value-correct
		// publish that was at least attempted.
		for name := range present {
			if !strings.HasPrefix(name, fmt.Sprintf("w%d-arr", w)) {
				continue
			}
			i, tried := jn.triedPub[name]
			if !tried {
				t.Fatalf("entry %s exists but was never attempted", name)
			}
			checkArray(t, s, name, w, i)
		}
		// The hot (republished) name: its surviving version must be one
		// that was attempted, and at least as new as the last ack.
		if present[fmt.Sprintf("w%d-hot", w)] {
			v, err := s.Lookup(fmt.Sprintf("w%d-hot", w))
			if err != nil {
				t.Fatal(err)
			}
			vals, err := v.Values()
			if err != nil {
				t.Fatal(err)
			}
			got := int(vals[0])
			if jn.anyHotAck && got < jn.hotAcked {
				t.Fatalf("w%d-hot rolled back to i=%d; i=%d was acknowledged", w, got, jn.hotAcked)
			}
			if got > jn.hotTried {
				t.Fatalf("w%d-hot at i=%d, but only i<=%d was ever tried", w, got, jn.hotTried)
			}
		} else if jn.anyHotAck {
			t.Fatalf("w%d-hot lost after kill -9; i=%d was acknowledged", w, jn.hotAcked)
		}
	}
}

// TestWALSyncOffMatchesLegacy: with the WAL off the engine is the
// pre-WAL engine — no log file appears, no WAL stats are reported, and
// durability is exactly checkpoint-granular.
func TestWALSyncOffMatchesLegacy(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Config{BlockElems: 64, MemElems: 1 << 15, WALSync: WALSyncOff})
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.SeqVector(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Publish("x", v); err != nil {
		t.Fatal(err)
	}
	if _, on := db.WALStats(); on {
		t.Fatal("WALSyncOff database reports an active WAL")
	}
	if _, err := os.Stat(filepath.Join(dir, "wal.riot")); !os.IsNotExist(err) {
		t.Fatalf("WALSyncOff wrote a wal file (err=%v)", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint file is the legacy format.
	f, err := os.Open(filepath.Join(dir, "catalog.riot"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	magic := make([]byte, 8)
	if _, err := f.Read(magic); err != nil {
		t.Fatal(err)
	}
	if string(magic) != "RIOTCAT1" {
		t.Fatalf("WALSyncOff checkpoint magic %q, want legacy RIOTCAT1", magic)
	}
}
