// Package riot is the public API of the RIOT reproduction: I/O-efficient
// numerical computing without SQL (Zhang, Herodotou, Yang — CIDR 2009).
//
// A Session wraps one evaluation backend. The Backend selects which of
// the paper's systems executes the work: plain R semantics over paged
// virtual memory, one of the three RIOT-DB variants over an embedded
// relational engine, or the next-generation RIOT engine (expression DAG,
// rule-based optimizer, tiled array store). Programs can be written
// either against the Go API (Vector/Matrix handles) or as riotscript —
// an R subset — via RunScript; the same script runs on every backend.
//
//	s := riot.NewSession(riot.Config{Backend: riot.BackendRIOT})
//	x, _ := s.SeqVector(1 << 20)
//	d, _ := x.Sub(3).Square().Add(x.Sub(4).Square()).Sqrt()
//	head, _ := d.Head(10)
//
// Two Config knobs scale the RIOT backend beyond the paper's sequential
// measurements: Workers parallelizes the executor and kernels over a
// sharded buffer pool, and Readahead enables the I/O scheduler
// underneath it (asynchronous prefetch, vectored device I/O, elevator
// write-back). The paper-faithful configuration is Workers: 1 with
// Readahead left false — it reproduces the seed's I/O counters exactly.
//
// The RIOT backend evaluates through an explicit physical planner.
// Config.Planner selects the strategy — PlannerHeuristic (the default,
// reproducing the paper's hard-coded policy) or PlannerCostBased
// (decisions derived from the analytic I/O formulas and the live M/B
// machine parameters) — and Session.Explain (or Vector.Explain /
// Matrix.Explain) returns the rendered plan for an expression:
// per-node pipeline/materialize decisions, the materialization and
// multiply schedule, and per-step estimated I/O in blocks and
// simulated seconds, all without executing anything.
package riot

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"riot/internal/engine"
	"riot/internal/plan"
	"riot/internal/riotdb"
	"riot/internal/rlang"
)

// Backend selects the evaluation engine.
type Backend int

// Available backends.
const (
	// BackendRIOT is the next-generation engine of §5 (default).
	BackendRIOT Backend = iota
	// BackendPlainR emulates R: eager evaluation in paged virtual memory.
	BackendPlainR
	// BackendStrawman is RIOT-DB materializing every operation.
	BackendStrawman
	// BackendMatNamed is RIOT-DB materializing named objects only.
	BackendMatNamed
	// BackendFullDB is RIOT-DB with full view deferral.
	BackendFullDB
)

// Planner selects the RIOT backend's physical-plan strategy.
type Planner int

// Available planner strategies.
const (
	// PlannerHeuristic is the seed executor's materialization policy,
	// applied at plan time (default; I/O-deterministic at Workers: 1).
	PlannerHeuristic Planner = iota
	// PlannerCostBased derives plan decisions from the paper's analytic
	// I/O cost formulas and the live machine parameters.
	PlannerCostBased
)

func (p Planner) strategy() plan.Strategy {
	if p == PlannerCostBased {
		return plan.CostBased
	}
	return plan.Heuristic
}

// WALSync selects the durability mode of a database's write-ahead log
// (riot.Open only; NewSession has no catalog to log).
type WALSync int

// WAL durability modes.
const (
	// WALSyncAlways (the default) acknowledges each publish only after
	// an fsync'd group flush of the log: acknowledged commits survive
	// kill -9. Concurrent sessions' appends share fsyncs (group
	// commit), so throughput degrades far less than one-fsync-per-
	// publish would suggest.
	WALSyncAlways WALSync = iota
	// WALSyncInterval acknowledges publishes immediately and fsyncs
	// the log on a background timer (WALFlushInterval); a crash can
	// lose at most the last interval's publishes.
	WALSyncInterval
	// WALSyncOff disables the log entirely: the database is
	// checkpoint-only, byte-identical to the pre-WAL engine. Publishes
	// since the last Checkpoint die with the process.
	WALSyncOff
)

// Config sizes the simulated machine.
type Config struct {
	Backend Backend
	// BlockElems is the disk block / VM page size in float64 elements
	// (the paper's B). Default 1024.
	BlockElems int
	// MemElems is the memory budget in float64 elements (the paper's M).
	// Default 1<<22 (32 MiB).
	MemElems int64
	// RuntimePages reserves part of memory for the language runtime
	// (plain R backend only). Default 24 pages.
	RuntimePages int
	// Workers bounds the goroutines the RIOT backend uses for fused
	// streaming, reductions, and the tiled matrix kernels (the buffer
	// pool is sharded to match). Default runtime.GOMAXPROCS(0).
	// Workers: 1 runs the sequential executor, whose I/O counts are
	// deterministic and reproduce the paper's measurements exactly.
	// Other backends are single-threaded and ignore it.
	Workers int
	// Planner selects the RIOT backend's physical-plan strategy. The
	// default, PlannerHeuristic, reproduces the seed executor's
	// materialization policy (and, at Workers: 1 with Readahead off,
	// its exact I/O counters). PlannerCostBased derives every
	// pipeline/materialize decision from the analytic cost formulas and
	// the live machine parameters, so shared subexpressions whose
	// inputs fit in memory are recomputed from the buffer pool instead
	// of written to disk. Other backends ignore it.
	Planner Planner
	// Readahead enables the RIOT backend's I/O scheduler: an
	// asynchronous prefetcher under the buffer pool (explicit hints from
	// the executor and kernels plus adaptive sequential readahead),
	// vectored device reads for contiguous runs, and elevator write-back
	// that flushes dirty frames in batches sorted by block. It trades
	// strict I/O determinism for bulky, sequential device traffic —
	// fewer random positionings, lower simulated time. Default off: the
	// I/O counters then match the seed engine's exactly, which is what
	// the paper's experiments and the golden tests rely on. Other
	// backends ignore it.
	Readahead bool
	// Time is the simulated-hardware model; zero value uses defaults.
	Time engine.TimeModel
	// SessionFrames is the pinned-frame quota of each session admitted
	// by a database opened with Open: the share of the shared buffer
	// pool one session may hold pinned at once. Default: a quarter of
	// the pool. Ignored by NewSession, whose session owns its whole
	// pool.
	SessionFrames int
	// MaxSessions bounds how many database sessions may be admitted
	// concurrently (admission control; DB.NewSession blocks while the
	// table is full). Default: pool capacity / SessionFrames. Ignored by
	// NewSession.
	MaxSessions int
	// WALSync selects the database's write-ahead-log durability mode:
	// WALSyncAlways (default — every acknowledged publish survives a
	// crash), WALSyncInterval (bounded loss window), or WALSyncOff
	// (checkpoint-only, the pre-WAL behavior). The log lives on the
	// host filesystem next to the catalog; its I/O is never charged to
	// the simulated device, so the paper's counters are identical in
	// every mode. Ignored by NewSession.
	WALSync WALSync
	// WALFlushInterval is the background fsync period under
	// WALSyncInterval. Default 50ms. Ignored in other modes.
	WALFlushInterval time.Duration
	// ResultCache enables the database's shared cross-session result
	// cache: materialized intermediates are memoized under a canonical
	// structural hash of their expression DAG plus the catalog version
	// of every published leaf, so sessions replaying a shared workload
	// serve each other's results with zero device reads. Republishing
	// or deleting a leaf changes the versions in the key, so stale hits
	// are structurally impossible. Off by default — with the cache off
	// every code path and I/O counter is byte-identical to the
	// cache-free engine. Ignored by NewSession (no catalog, no
	// published leaves, nothing cacheable).
	ResultCache bool
	// ResultCacheQuota is the result cache's storage budget in float64
	// elements, charged to the shared buffer pool as a dedicated
	// admission-controlled share and reclaimed by LRU eviction. Default
	// MemElems/4. Ignored unless ResultCache is set.
	ResultCacheQuota int64
}

// Session is a handle to one engine instance. Sessions from NewSession
// own a private engine; sessions from DB.NewSession share the database's
// device, buffer pool, and catalog. Either way, Close releases the
// session's resources — database sessions leak pool frames and storage
// until it is called.
type Session struct {
	eng    engine.Engine
	db     *DB
	seq    int64 // admission sequence in the DB (0 for standalone)
	closed atomic.Bool
}

// Close releases the session: in-flight prefetches are drained, the
// session's arrays and temporaries are dropped from the buffer pool and
// their storage freed, and (for database sessions) the admission slot is
// returned. Close is idempotent; using the session afterwards is an
// error. Published catalog objects are unaffected — surviving the
// session is what publishing means.
func (s *Session) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if err := s.eng.Close(); err != nil {
		// Still open: the engine refused (frames pinned). Keep the
		// admission slot and stay retryable rather than returning a
		// wedged session's share of the pool to the admission counter.
		s.closed.Store(false)
		return err
	}
	if s.db != nil {
		s.db.release(s)
	}
	return nil
}

// NewSession creates a session with the given configuration.
func NewSession(cfg Config) *Session {
	if cfg.BlockElems == 0 {
		cfg.BlockElems = 1024
	}
	if cfg.MemElems == 0 {
		cfg.MemElems = 1 << 22
	}
	if cfg.RuntimePages == 0 {
		cfg.RuntimePages = 24
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Time == (engine.TimeModel{}) {
		cfg.Time = engine.DefaultTimeModel
	}
	var e engine.Engine
	switch cfg.Backend {
	case BackendPlainR:
		pages := int(cfg.MemElems/int64(cfg.BlockElems)) + cfg.RuntimePages
		e = engine.NewPlainR(cfg.BlockElems, pages, cfg.RuntimePages, cfg.Time)
	case BackendStrawman:
		e = engine.NewRIOTDB(riotdb.Strawman, cfg.BlockElems, cfg.MemElems, cfg.Time)
	case BackendMatNamed:
		e = engine.NewRIOTDB(riotdb.MatNamed, cfg.BlockElems, cfg.MemElems, cfg.Time)
	case BackendFullDB:
		e = engine.NewRIOTDB(riotdb.Full, cfg.BlockElems, cfg.MemElems, cfg.Time)
	default:
		e = engine.NewRIOTConfigured(cfg.BlockElems, cfg.MemElems, cfg.Time, engine.RIOTOptions{
			Workers:   cfg.Workers,
			Readahead: cfg.Readahead,
			Planner:   cfg.Planner.strategy(),
		})
	}
	return &Session{eng: e}
}

// EngineName reports which backend the session runs on.
func (s *Session) EngineName() string { return s.eng.Name() }

// Engine exposes the underlying engine for advanced use (stats, ablation
// knobs on the RIOT backend).
func (s *Session) Engine() engine.Engine { return s.eng }

// Report returns resource usage since the last ResetStats.
func (s *Session) Report() engine.Report { return s.eng.Report() }

// ResetStats zeroes the usage counters.
func (s *Session) ResetStats() { s.eng.ResetStats() }

// explain renders the physical plan for an engine value. Only the RIOT
// backend plans physically; other backends return an error.
func (s *Session) explain(val engine.Value) (string, error) {
	rt, ok := s.eng.(*engine.RIOT)
	if !ok {
		return "", fmt.Errorf("riot: Explain requires the RIOT backend (engine %q)", s.eng.Name())
	}
	return rt.Explain(val)
}

// Explain returns the rendered physical plan for a vector expression:
// per-node pipeline/materialize decisions, the materialization and
// multiply schedule, and per-step estimated I/O in blocks and simulated
// seconds. Nothing is executed. RIOT backend only.
func (s *Session) Explain(v *Vector) (string, error) { return s.explain(v.val) }

// Explain renders the physical plan of the deferred expression this
// handle denotes (see Session.Explain).
func (v *Vector) Explain() (string, error) { return v.s.explain(v.val) }

// Explain renders the physical plan of the deferred matrix expression,
// including the multiply algorithm chosen for every %*% node (see
// Session.Explain).
func (m *Matrix) Explain() (string, error) { return m.s.explain(m.val) }

// RunScript executes a riotscript program and returns its printed output.
func (s *Session) RunScript(src string) (string, error) {
	in := s.Interp()
	if err := in.Run(src); err != nil {
		return in.Out.String(), err
	}
	return in.Out.String(), nil
}

// Interp returns a fresh riotscript interpreter bound to the session's
// engine, for callers that want to pre-bind variables. On a database
// session the interpreter is additionally bound to the shared catalog:
// top-level assignments publish named arrays and variable reads see
// other sessions' published objects (last-writer-wins).
func (s *Session) Interp() *rlang.Interp {
	in := rlang.New(s.eng)
	if s.db != nil {
		in.Globals = sessionGlobals{s: s}
	}
	return in
}

// Vector is a deferred (or eager, depending on backend) vector handle.
type Vector struct {
	s   *Session
	val engine.Value
}

// Matrix is a matrix handle.
type Matrix struct {
	s   *Session
	val engine.Value
}

// NewVector creates a vector of length n with values gen(i) (0-based).
func (s *Session) NewVector(n int64, gen func(i int64) float64) (*Vector, error) {
	v, err := s.eng.NewVector(n, gen)
	if err != nil {
		return nil, err
	}
	return &Vector{s: s, val: v}, nil
}

// SeqVector creates the vector 0, 1, ..., n-1.
func (s *Session) SeqVector(n int64) (*Vector, error) {
	return s.NewVector(n, func(i int64) float64 { return float64(i) })
}

// NewMatrix creates a rows×cols matrix with values gen(i, j).
func (s *Session) NewMatrix(rows, cols int64, gen func(i, j int64) float64) (*Matrix, error) {
	m, err := s.eng.NewMatrix(rows, cols, gen)
	if err != nil {
		return nil, err
	}
	return &Matrix{s: s, val: m}, nil
}

// Sample draws k distinct indices from [0, n) deterministically.
func (s *Session) Sample(n, k int64, seed uint64) (*Vector, error) {
	v, err := s.eng.Sample(n, k, seed)
	if err != nil {
		return nil, err
	}
	return &Vector{s: s, val: v}, nil
}

// Len returns the vector length.
func (v *Vector) Len() int64 { return v.s.eng.Length(v.val) }

func (v *Vector) lift(val engine.Value, err error) (*Vector, error) {
	if err != nil {
		return nil, err
	}
	return &Vector{s: v.s, val: val}, nil
}

// AddV adds two vectors elementwise.
func (v *Vector) AddV(o *Vector) (*Vector, error) { return v.lift(v.s.eng.Arith("+", v.val, o.val)) }

// MulV multiplies two vectors elementwise.
func (v *Vector) MulV(o *Vector) (*Vector, error) { return v.lift(v.s.eng.Arith("*", v.val, o.val)) }

// Add adds a scalar.
func (v *Vector) Add(c float64) (*Vector, error) {
	return v.lift(v.s.eng.ArithScalar("+", v.val, c, false))
}

// Sub subtracts a scalar.
func (v *Vector) Sub(c float64) (*Vector, error) {
	return v.lift(v.s.eng.ArithScalar("-", v.val, c, false))
}

// Mul multiplies by a scalar.
func (v *Vector) Mul(c float64) (*Vector, error) {
	return v.lift(v.s.eng.ArithScalar("*", v.val, c, false))
}

// Square squares elementwise.
func (v *Vector) Square() (*Vector, error) { return v.lift(v.s.eng.Arith("*", v.val, v.val)) }

// Sqrt takes elementwise square roots.
func (v *Vector) Sqrt() (*Vector, error) { return v.lift(v.s.eng.Map("sqrt", v.val)) }

// Apply maps a named function (sqrt, abs, exp, log, sin, cos).
func (v *Vector) Apply(fn string) (*Vector, error) { return v.lift(v.s.eng.Map(fn, v.val)) }

// Gather returns v[idx] for a 0-based index vector.
func (v *Vector) Gather(idx *Vector) (*Vector, error) {
	return v.lift(v.s.eng.IndexBy(v.val, idx.val))
}

// Slice returns v[lo:hi) (0-based).
func (v *Vector) Slice(lo, hi int64) (*Vector, error) {
	return v.lift(v.s.eng.Range(v.val, lo, hi))
}

// UpdateWhere returns a new state with v[v cmp thresh] <- val.
func (v *Vector) UpdateWhere(cmp string, thresh, val float64) (*Vector, error) {
	return v.lift(v.s.eng.UpdateWhere(v.val, cmp, thresh, val))
}

// Head fetches the first k values, forcing evaluation.
func (v *Vector) Head(k int64) ([]float64, error) { return v.s.eng.Fetch(v.val, k) }

// Values fetches every value, forcing evaluation.
func (v *Vector) Values() ([]float64, error) { return v.s.eng.Fetch(v.val, -1) }

// Sum forces evaluation of the total.
func (v *Vector) Sum() (float64, error) { return v.s.eng.Sum(v.val) }

// sparseEng returns the session engine's sparse capability, if any.
func (s *Session) sparseEng() (engine.SparseEngine, bool) {
	se, ok := s.eng.(engine.SparseEngine)
	return se, ok
}

// Sparse forces the vector and returns a handle backed by
// tile-compressed sparse storage: all-zero chunks occupy no blocks, and
// downstream pipelines skip ranges the zero-propagation rules prove
// empty. On backends without a sparse array kind it is the identity.
func (v *Vector) Sparse() (*Vector, error) {
	se, ok := v.s.sparseEng()
	if !ok {
		return v, nil
	}
	return v.lift(se.ToSparse(v.val))
}

// Dense converts a sparse vector handle back to dense tiles (identity
// for dense handles and kind-free backends).
func (v *Vector) Dense() (*Vector, error) {
	se, ok := v.s.sparseEng()
	if !ok {
		return v, nil
	}
	return v.lift(se.ToDense(v.val))
}

// NNZ forces the vector and returns its nonzero count — answered from
// the sparse directory, without I/O, for sparse handles.
func (v *Vector) NNZ() (int64, error) {
	if se, ok := v.s.sparseEng(); ok {
		return se.NNZ(v.val)
	}
	vals, err := v.Values()
	if err != nil {
		return 0, err
	}
	var n int64
	for _, x := range vals {
		if x != 0 {
			n++
		}
	}
	return n, nil
}

func (m *Matrix) lift(val engine.Value, err error) (*Matrix, error) {
	if err != nil {
		return nil, err
	}
	return &Matrix{s: m.s, val: val}, nil
}

// Sparse forces the matrix and returns a tile-compressed sparse handle:
// all-zero tiles occupy no blocks, multiplies dispatch to tile-skipping
// sparse kernels, and publishing keeps the compressed form. Identity on
// backends without a sparse array kind.
func (m *Matrix) Sparse() (*Matrix, error) {
	se, ok := m.s.sparseEng()
	if !ok {
		return m, nil
	}
	return m.lift(se.ToSparse(m.val))
}

// Kind forces the matrix and reports its natural storage kind, "dense"
// or "sparse". Kind-free backends always answer "dense". Cluster
// coordinators use this to ship a shard in the same kind its owner
// holds, so remote kernels see the storage the local ones would.
func (m *Matrix) Kind() (string, error) {
	rt, ok := m.s.eng.(*engine.RIOT)
	if !ok {
		return "dense", nil
	}
	_, sp, err := rt.ForceAnyMatrix(m.val)
	if err != nil {
		return "", err
	}
	if sp != nil {
		return "sparse", nil
	}
	return "dense", nil
}

// Dense converts a sparse matrix handle back to dense tiles (identity
// for dense handles and kind-free backends).
func (m *Matrix) Dense() (*Matrix, error) {
	se, ok := m.s.sparseEng()
	if !ok {
		return m, nil
	}
	return m.lift(se.ToDense(m.val))
}

// NNZ forces the matrix and returns its nonzero count — free for sparse
// handles, a full scan for dense ones.
func (m *Matrix) NNZ() (int64, error) {
	if se, ok := m.s.sparseEng(); ok {
		return se.NNZ(m.val)
	}
	vals, err := m.Values()
	if err != nil {
		return 0, err
	}
	var n int64
	for _, x := range vals {
		if x != 0 {
			n++
		}
	}
	return n, nil
}

// Force evaluates the deferred matrix expression end to end, in its
// natural kind, without fetching any elements, then discards the
// result — the way to measure a kernel's I/O without billing a result
// scan to it. Repeated calls re-run the evaluation and do not grow the
// device. Eager backends have nothing to do beyond a zero-length
// fetch.
func (m *Matrix) Force() error {
	if rt, ok := m.s.eng.(*engine.RIOT); ok {
		return rt.ForceDiscard(m.val)
	}
	_, err := m.s.eng.Fetch(m.val, 0)
	return err
}

// Dims returns (rows, cols).
func (m *Matrix) Dims() (int64, int64) {
	r, c, _ := m.s.eng.Dims(m.val)
	return r, c
}

// MatMul multiplies two matrices.
func (m *Matrix) MatMul(o *Matrix) (*Matrix, error) {
	v, err := m.s.eng.MatMul(m.val, o.val)
	if err != nil {
		return nil, err
	}
	return &Matrix{s: m.s, val: v}, nil
}

// MatMulRing multiplies two matrices over a named semi-ring ("standard",
// "minplus", "maxplus", "boolean"; "" means standard). On backends with
// semi-ring kernels the ring travels into the engine's plans and
// kernels; other backends reject non-standard rings.
func (m *Matrix) MatMulRing(o *Matrix, ring string) (*Matrix, error) {
	if re, ok := m.s.eng.(engine.RingEngine); ok {
		return m.lift(re.MatMulRing(m.val, o.val, ring))
	}
	if ring == "" || ring == "standard" {
		return m.MatMul(o)
	}
	return nil, fmt.Errorf("riot: engine %s has no semi-ring kernels", m.s.eng.Name())
}

// Closure computes the reflexive-transitive closure of a square matrix
// over a named semi-ring by repeated squaring — over "minplus", the
// all-pairs shortest-path distances of the weighted graph the matrix
// encodes (absent/zero entries mean "no edge", the diagonal comes out
// 0). The result is dense.
func (m *Matrix) Closure(ring string) (*Matrix, error) {
	if re, ok := m.s.eng.(engine.RingEngine); ok {
		return m.lift(re.Closure(m.val, ring))
	}
	return nil, fmt.Errorf("riot: engine %s has no semi-ring kernels", m.s.eng.Name())
}

// Values fetches the full matrix row-major, forcing evaluation.
func (m *Matrix) Values() ([]float64, error) { return m.s.eng.Fetch(m.val, -1) }

// At forces evaluation of a single cell.
func (m *Matrix) At(i, j int64) (float64, error) {
	r, c, _ := m.s.eng.Dims(m.val)
	if i < 0 || i >= r || j < 0 || j >= c {
		return 0, fmt.Errorf("riot: index (%d,%d) outside %dx%d matrix", i, j, r, c)
	}
	vals, err := m.s.eng.Fetch(m.val, i*c+j+1)
	if err != nil {
		return 0, err
	}
	return vals[i*c+j], nil
}
